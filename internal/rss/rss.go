// Package rss reads this process's resident-set-size counters from
// /proc/self/status. The out-of-core work is judged on peak RSS relative
// to the CSR size, so the numbers come from the kernel's accounting of
// the live process — not Go runtime heap stats, which never see mmap'ed
// pages. On platforms without procfs both functions return 0 and callers
// report the metric as unavailable.
package rss

import (
	"bytes"
	"os"
	"strconv"
)

// Peak returns VmHWM, the process's high-water resident set size in
// bytes — the peak since process start or the last ResetPeak.
func Peak() int64 { return readStatus("VmHWM:") }

// ResetPeak resets VmHWM to the current VmRSS by writing "5" to
// /proc/self/clear_refs (Linux ≥ 4.0). It lets one process measure
// per-phase peaks: reset, run the phase, read Peak. Returns false when
// the kernel does not support the reset; callers should then treat Peak
// as a whole-process high-water mark.
func ResetPeak() bool {
	return os.WriteFile("/proc/self/clear_refs", []byte("5"), 0o200) == nil
}

// Current returns VmRSS, the resident set size right now, in bytes.
func Current() int64 { return readStatus("VmRSS:") }

func readStatus(field string) int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	i := bytes.Index(data, []byte(field))
	if i < 0 {
		return 0
	}
	line := data[i+len(field):]
	if j := bytes.IndexByte(line, '\n'); j >= 0 {
		line = line[:j]
	}
	line = bytes.TrimSuffix(bytes.TrimSpace(line), []byte(" kB"))
	kb, err := strconv.ParseInt(string(bytes.TrimSpace(line)), 10, 64)
	if err != nil {
		return 0
	}
	return kb << 10
}
