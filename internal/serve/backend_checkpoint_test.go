package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dimm/internal/graph"
)

// TestCheckpointBackendByteIdentity: a query service warmed over an
// mmap-backed graph must write byte-for-byte the checkpoints of one
// warmed over the heap-backed copy of the same segmented file, and
// answer queries identically. This is what lets a worker restart with a
// different -graph-backend (say, after the graph outgrew RAM) and still
// restore its predecessor's checkpoints: the store binds checkpoints to
// graph.ContentHash, which the backends share.
func TestCheckpointBackendByteIdentity(t *testing.T) {
	base := testGraph(t)
	segPath := filepath.Join(t.TempDir(), "g.dsg")
	if err := graph.WriteSegmentedFile(segPath, base, "wc"); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		files map[string][]byte
		seeds []uint32
		theta int64
	}
	run := func(backend graph.Backend) outcome {
		t.Helper()
		g, err := graph.OpenSegmented(segPath, backend)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		dir := t.TempDir()
		s := testService(t, Config{Graph: g, Machines: 2, CheckpointDir: dir})
		res, err := s.Warm()
		if err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.CheckpointEpochs == 0 || st.CheckpointErrors != 0 {
			t.Fatalf("%v: epochs=%d errors=%d", backend, st.CheckpointEpochs, st.CheckpointErrors)
		}
		s.Close()
		files := map[string][]byte{}
		err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return err
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(dir, path)
			if err != nil {
				return err
			}
			files[rel] = b
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{files: files, seeds: res.Seeds, theta: st.Theta}
	}

	mem := run(graph.BackendMem)
	mmap := run(graph.BackendMmap)

	if !reflect.DeepEqual(mem.seeds, mmap.seeds) || mem.theta != mmap.theta {
		t.Fatalf("backends diverged: mem seeds=%v θ=%d, mmap seeds=%v θ=%d",
			mem.seeds, mem.theta, mmap.seeds, mmap.theta)
	}
	if len(mem.files) == 0 {
		t.Fatal("no checkpoint files written")
	}
	if len(mem.files) != len(mmap.files) {
		t.Fatalf("checkpoint file sets differ: mem %d files, mmap %d files", len(mem.files), len(mmap.files))
	}
	for name, want := range mem.files {
		got, ok := mmap.files[name]
		if !ok {
			t.Fatalf("mmap checkpoint missing %s", name)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("checkpoint %s differs between backends (%d vs %d bytes)", name, len(want), len(got))
		}
	}
}
