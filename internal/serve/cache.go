package serve

import (
	"container/list"
	"sync"
)

// answerCache is a small LRU of recent answers keyed by (k, ε, mode).
// Entries are invalidated wholesale when the resident sample grows (a
// new epoch can only improve certificates, and serving mixed-epoch
// answers would break the answers-are-deterministic-per-epoch
// contract). The mode is part of the key because the fast and certified
// tiers select seeds differently: letting a sketch-ranked answer alias
// a certified one (or vice versa) would silently swap the guarantee the
// client asked for.
type answerCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[cacheKey]*list.Element
	epoch uint64
}

type cacheKey struct {
	k    int
	eps  float64
	mode Mode
}

type cacheEntry struct {
	key cacheKey
	ans *Answer
}

func newAnswerCache(capacity int) *answerCache {
	if capacity < 0 {
		capacity = 0
	}
	return &answerCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[cacheKey]*list.Element),
	}
}

func (c *answerCache) get(k int, eps float64, mode Mode) (*Answer, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[cacheKey{k, eps, mode}]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).ans, true
}

// put stores an answer, evicting stale epochs first: a growth between
// this answer's selection and an older cached one makes the older one
// unreachable anyway (queries re-resolve on the new epoch).
func (c *answerCache) put(k int, eps float64, mode Mode, ans *Answer) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ans.Epoch != c.epoch {
		if ans.Epoch < c.epoch {
			return // raced with a grower; don't serve pre-growth answers
		}
		c.order.Init()
		clear(c.byKey)
		c.epoch = ans.Epoch
	}
	key := cacheKey{k, eps, mode}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).ans = ans
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, ans: ans})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// advance flushes all entries older than the given epoch; the grower
// calls it right after publishing a new epoch so get never serves a
// pre-growth answer.
func (c *answerCache) advance(epoch uint64) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch > c.epoch {
		c.order.Init()
		clear(c.byKey)
		c.epoch = epoch
	}
}

func (c *answerCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
