package serve

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"dimm/internal/graph"
	"dimm/internal/store"
)

// TestCheckpointRestoreRoundTrip is the acceptance scenario: a warmed
// service is checkpointed and "killed"; a second service restoring from
// the same directory must answer the same queries byte-identically with
// zero RR generation — the fetch and generation counters stay flat.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()

	warm := testService(t, Config{Graph: g, Machines: 2, CheckpointDir: dir})
	want, err := warm.Warm()
	if err != nil {
		t.Fatal(err)
	}
	want5, err := warm.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	wst := warm.Stats()
	if wst.CheckpointEpochs == 0 || wst.CheckpointBytes == 0 {
		t.Fatalf("warm service wrote no checkpoints: %+v", wst)
	}
	if wst.CheckpointErrors != 0 {
		t.Fatalf("%d checkpoint errors", wst.CheckpointErrors)
	}
	warm.Close()

	// "Restart": a fresh service over the same graph and config, restoring
	// from the checkpoint directory.
	cold := testService(t, Config{Graph: g, Machines: 2, CheckpointDir: dir, Restore: true})
	cst := cold.Stats()
	if !cst.Restored || cst.Theta != wst.Theta || cst.Epoch != wst.Epoch {
		t.Fatalf("restore: got epoch=%d theta=%d restored=%v, want epoch=%d theta=%d",
			cst.Epoch, cst.Theta, cst.Restored, wst.Epoch, wst.Theta)
	}

	got, err := cold.Query(want.K, want.Eps)
	if err != nil {
		t.Fatal(err)
	}
	got5, err := cold.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-identical answers: same seeds, same certificate numbers.
	if !reflect.DeepEqual(got.Seeds, want.Seeds) || !reflect.DeepEqual(got5.Seeds, want5.Seeds) {
		t.Fatalf("restored service selected different seeds:\n got %v / %v\nwant %v / %v",
			got.Seeds, got5.Seeds, want.Seeds, want5.Seeds)
	}
	if got.SpreadLower != want.SpreadLower || got.OptUpper != want.OptUpper || got.Ratio != want.Ratio {
		t.Fatalf("restored certificate differs: got (%v, %v, %v), want (%v, %v, %v)",
			got.SpreadLower, got.OptUpper, got.Ratio, want.SpreadLower, want.OptUpper, want.Ratio)
	}
	// Zero RR generation on the restored service: both queries were
	// admissible against the restored sample.
	if after := cold.Stats(); after.Generated != 0 || after.GrowRounds != 0 {
		t.Fatalf("restored service generated %d RR sets over %d rounds; want 0",
			after.Generated, after.GrowRounds)
	}
}

// TestRestoreThenGrow: a restored service whose envelope allows further
// growth must extend the sample with fresh (salted) worker streams, keep
// answering, and checkpoint the new epochs back to the same store.
func TestRestoreThenGrow(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()

	first := testService(t, Config{Graph: g, Machines: 2, CheckpointDir: dir})
	// One query at a loose eps: warms part of the envelope only.
	if _, err := first.Query(2, 0.45); err != nil {
		t.Fatal(err)
	}
	st1 := first.Stats()
	first.Close()

	second := testService(t, Config{Graph: g, Machines: 2, CheckpointDir: dir, Restore: true})
	if st := second.Stats(); !st.Restored || st.Theta != st1.Theta {
		t.Fatalf("restore: %+v, want theta %d", st, st1.Theta)
	}
	// The hardest admissible query forces growth past the restored state.
	ans, err := second.Warm()
	if err != nil {
		t.Fatal(err)
	}
	st2 := second.Stats()
	if st2.Generated == 0 || st2.Theta <= st1.Theta {
		t.Fatalf("restored service did not grow: %+v", st2)
	}
	if ans.Ratio == 0 {
		t.Fatal("no certificate after growth")
	}
	if st2.CheckpointEpochs == 0 || st2.CheckpointErrors != 0 {
		t.Fatalf("post-restore growth not checkpointed: %+v", st2)
	}
	second.Close()

	// And a third restore picks up the union.
	third := testService(t, Config{Graph: g, Machines: 2, CheckpointDir: dir, Restore: true})
	if st := third.Stats(); st.Theta != st2.Theta || st.Epoch != st2.Epoch {
		t.Fatalf("second restore: epoch=%d theta=%d, want epoch=%d theta=%d",
			st.Epoch, st.Theta, st2.Epoch, st2.Theta)
	}
}

// TestRestoreFingerprintMismatch: restoring under any different sampling
// configuration must fail with the typed store error, not silently serve
// a sample the certificates were not computed for.
func TestRestoreFingerprintMismatch(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	warm := testService(t, Config{Graph: g, Machines: 2, CheckpointDir: dir})
	if _, err := warm.Query(2, 0.45); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	bad := []struct {
		name string
		cfg  Config
	}{
		{"seed", Config{Graph: g, Machines: 2, Seed: 43}},
		{"machines", Config{Graph: g, Machines: 4}},
		{"parallelism", Config{Graph: g, Machines: 2, Parallelism: 3}},
		{"graph_hash", Config{Graph: testGraphSeeded(t, 18), Machines: 2}},
	}
	for _, tc := range bad {
		cfg := tc.cfg
		cfg.CheckpointDir = dir
		cfg.Restore = true
		cfg.KMax = 10
		cfg.EpsFloor = 0.3
		if cfg.Seed == 0 {
			cfg.Seed = 42
		}
		cfg.Model = warm.cfg.Model
		_, err := New(cfg)
		var fe *store.FingerprintMismatchError
		if !errors.As(err, &fe) {
			t.Fatalf("%s mismatch: got %v, want FingerprintMismatchError", tc.name, err)
		}
		if fe.Field != tc.name {
			t.Fatalf("mutated %s but error names %s", tc.name, fe.Field)
		}
	}
}

// TestNonEmptyStoreWithoutRestore: starting fresh over a non-empty
// checkpoint directory without Restore must be refused — appending a new
// run would fork the stored sample history.
func TestNonEmptyStoreWithoutRestore(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	warm := testService(t, Config{Graph: g, Machines: 2, CheckpointDir: dir})
	if _, err := warm.Query(2, 0.45); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	cfg := Config{Graph: g, Machines: 2, CheckpointDir: dir, Seed: 42, KMax: 10, EpsFloor: 0.3}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "restore") {
		t.Fatalf("non-empty store without Restore: got %v, want a restore-hint error", err)
	}
}

// testGraphSeeded is testGraph with a different generator seed, so its
// content hash differs while everything else matches.
func testGraphSeeded(t testing.TB, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: 300, AvgDegree: 6, Seed: seed, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return wc
}
