package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"
	"time"
)

// TestFastQuery drives the fast tier end to end: sketch-ranked seeds,
// certified before serving, cached under the fast mode key only.
func TestFastQuery(t *testing.T) {
	s := testService(t, Config{Machines: 2})

	ansF, err := s.QueryMode(5, 0.3, ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	if ansF.Mode != ModeFast || len(ansF.Seeds) != 5 {
		t.Fatalf("fast answer: mode=%q seeds=%v", ansF.Mode, ansF.Seeds)
	}
	target := 1 - 1/math.E - 0.3
	if ansF.Ratio < target && ansF.Theta < s.budget.ThetaMax {
		t.Fatalf("fast answer served with ratio %.4f < %.4f pre-cap", ansF.Ratio, target)
	}
	if ansF.SketchSpread <= 0 {
		t.Fatalf("fast answer carries no sketch spread estimate: %+v", ansF)
	}
	seen := map[uint32]bool{}
	for _, u := range ansF.Seeds {
		if int(u) >= s.n || seen[u] {
			t.Fatalf("bad fast seed set %v", ansF.Seeds)
		}
		seen[u] = true
	}

	// Mode-aliasing regression: the cached fast answer must NOT be served
	// to a certified query for the same (k, ε) — the modes select
	// differently and the client asked for the greedy guarantee.
	ansC, err := s.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if ansC.Cached {
		t.Fatal("certified query aliased the fast tier's cache entry")
	}
	if ansC.Mode != ModeCertified {
		t.Fatalf("certified answer labeled %q", ansC.Mode)
	}

	// Both modes re-queried: each hits its own entry, modes preserved.
	for ansC.Epoch != ansF.Epoch {
		// Certified growth invalidated the fast entry; recompute fast on
		// the new epoch (bounded: the sample only grows toward its cap).
		if ansF, err = s.QueryMode(5, 0.3, ModeFast); err != nil {
			t.Fatal(err)
		}
		if ansF.Epoch == ansC.Epoch {
			break
		}
		if ansC, err = s.Query(5, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	hitF, err := s.QueryMode(5, 0.3, ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	hitC, err := s.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !hitF.Cached || hitF.Mode != ModeFast {
		t.Fatalf("fast re-query: cached=%v mode=%q", hitF.Cached, hitF.Mode)
	}
	if !hitC.Cached || hitC.Mode != ModeCertified {
		t.Fatalf("certified re-query: cached=%v mode=%q", hitC.Cached, hitC.Mode)
	}

	st := s.Stats()
	if st.FastSeedQueries == 0 || st.SketchBuilds == 0 || st.SketchEstimates == 0 {
		t.Fatalf("fast-tier counters empty: %+v", st)
	}
	if st.FastAgreeChecked == 0 {
		t.Fatal("no fast/certified agreement sample collected at a shared epoch")
	}
	if st.SketchTheta != st.Theta {
		t.Fatalf("sketch absorbed %d instances, sample holds %d", st.SketchTheta, st.Theta)
	}
}

// TestFastQueryDeterministic: fast answers are a pure function of
// (config, epoch), like certified ones.
func TestFastQueryDeterministic(t *testing.T) {
	g := testGraph(t)
	a := testService(t, Config{Graph: g, Machines: 2})
	b := testService(t, Config{Graph: g, Machines: 2})
	ansA, err := a.QueryMode(7, 0.3, ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	ansB, err := b.QueryMode(7, 0.3, ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ansA.Seeds) != fmt.Sprint(ansB.Seeds) || ansA.Epoch != ansB.Epoch {
		t.Fatalf("fast answers diverged:\n  %v @%d\n  %v @%d",
			ansA.Seeds, ansA.Epoch, ansB.Seeds, ansB.Epoch)
	}
}

// TestFastSpreadAvoidsSampleLock is the acceptance check that
// ?mode=fast spread reads never touch the RR sample's lock: with the
// epoch lock write-held AND the cluster lock held (a worst-case grower
// stall), SpreadSketch must still answer.
func TestFastSpreadAvoidsSampleLock(t *testing.T) {
	s := testService(t, Config{})
	if _, err := s.Query(5, 0.3); err != nil {
		t.Fatal(err) // populate sample + sketch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()

	done := make(chan error, 1)
	go func() {
		est, rel, err := s.SpreadSketch([]uint32{1, 2, 3})
		if err == nil && (est <= 0 || rel <= 0) {
			err = fmt.Errorf("degenerate fast spread %v ± %v", est, rel)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast spread blocked on the sample or cluster lock")
	}
}

// TestFastTierDisabled: SketchK < 0 turns the tier off; fast requests
// are typed client errors, certified service is unaffected.
func TestFastTierDisabled(t *testing.T) {
	s := testService(t, Config{SketchK: -1})
	var bad *BadQueryError
	if _, err := s.QueryMode(5, 0.3, ModeFast); !errors.As(err, &bad) {
		t.Fatalf("fast query on disabled tier: %v, want *BadQueryError", err)
	}
	if _, _, err := s.SpreadSketch([]uint32{1}); !errors.As(err, &bad) {
		t.Fatalf("fast spread on disabled tier: %v, want *BadQueryError", err)
	}
	if _, err := s.Query(5, 0.3); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SketchK != 0 || st.SketchBuilds != 0 {
		t.Fatalf("disabled tier leaked counters: %+v", st)
	}
}

// TestSketchRestore: a restart restores the sketch segment byte-for-byte
// when the parameters match, and rebuilds from the restored RR sample
// when they do not — either way the fast tier is warm before the first
// query.
func TestSketchRestore(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	s1 := testService(t, Config{Graph: g, CheckpointDir: dir})
	if _, err := s1.Query(5, 0.3); err != nil {
		t.Fatal(err)
	}
	theta := s1.Stats().Theta
	s1.Close()

	s2 := testService(t, Config{Graph: g, CheckpointDir: dir, Restore: true})
	st := s2.Stats()
	if !st.Restored || st.Theta != theta {
		t.Fatalf("sample restore: %+v", st)
	}
	if !st.SketchRestored || st.SketchTheta != theta {
		t.Fatalf("sketch not adopted from the store: restored=%v theta=%d/%d",
			st.SketchRestored, st.SketchTheta, theta)
	}
	if _, err := s2.QueryMode(5, 0.3, ModeFast); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// Different K: the stored segment is rejected (parameter mismatch)
	// and the sketch rebuilds from the restored sample instead.
	s3 := testService(t, Config{Graph: g, CheckpointDir: dir, Restore: true, SketchK: 32})
	st = s3.Stats()
	if st.SketchRestored {
		t.Fatal("adopted a stored sketch with the wrong K")
	}
	if st.SketchK != 32 || st.SketchTheta != theta {
		t.Fatalf("rebuild after mismatch: %+v", st)
	}
	if _, err := s3.QueryMode(5, 0.3, ModeFast); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPRetryAfter429: admission-control rejections must carry a
// Retry-After header (RFC 6585 guidance), not just the 429 status.
func TestHTTPRetryAfter429(t *testing.T) {
	s, ts := testServer(t, Config{MaxInFlight: 1})
	s.sem <- struct{}{}
	resp, err := http.Post(ts.URL+"/v1/seeds", "application/json", nil)
	<-s.sem
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server -> %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}
}

// TestHTTPModeKnob drives ?mode= through the full HTTP stack on both
// endpoints.
func TestHTTPModeKnob(t *testing.T) {
	_, ts := testServer(t, Config{})

	// Cold fast spread: 503 with a backoff hint, not a wrong answer.
	resp, err := http.Get(ts.URL + "/v1/spread?seeds=1,2&mode=fast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("cold fast spread -> %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Fast seeds over HTTP.
	ans, code := postSeedsMode(t, ts.URL, 5, 0.3, "fast")
	if code != http.StatusOK || ans.Mode != ModeFast || len(ans.Seeds) != 5 {
		t.Fatalf("fast seeds -> %d %+v", code, ans)
	}

	// Warm fast spread: sketch-only estimate with its error bar.
	resp, err = http.Get(ts.URL + "/v1/spread?seeds=1,2&mode=fast")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm fast spread -> %d", resp.StatusCode)
	}
	var sp spreadResponse
	if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
		t.Fatal(err)
	}
	if sp.Mode != ModeFast || sp.Mean <= 0 || sp.RelStderr <= 0 || sp.Rounds != 0 {
		t.Fatalf("bad fast spread response: %+v", sp)
	}

	// Unknown mode: 400 on both endpoints.
	if _, code := postSeedsMode(t, ts.URL, 5, 0.3, "turbo"); code != http.StatusBadRequest {
		t.Fatalf("mode=turbo seeds -> %d, want 400", code)
	}
	resp, err = http.Get(ts.URL + "/v1/spread?seeds=1&mode=turbo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mode=turbo spread -> %d, want 400", resp.StatusCode)
	}
}

func postSeedsMode(t *testing.T, url string, k int, eps float64, mode string) (*Answer, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"k": k, "eps": eps})
	resp, err := http.Post(url+"/v1/seeds?mode="+mode, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var ans Answer
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		t.Fatal(err)
	}
	return &ans, resp.StatusCode
}
