package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// fragileClusters builds single-worker C1/C2 clusters whose R1 worker
// dies at the killAt'th call with no replacement ever available — the
// worst case the serve layer must degrade through, not crash on.
func fragileClusters(t *testing.T, g *graph.Graph, killAt int64) (c1, c2 *cluster.Cluster, fc *cluster.FaultConn) {
	t.Helper()
	mk := func(seed uint64, faulty bool) *cluster.Cluster {
		w, err := cluster.NewWorker(cluster.WorkerConfig{Graph: g, Model: diffusion.IC, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		conn := cluster.Conn(cluster.NewLocalConn(w))
		if faulty {
			fc = cluster.NewFaultConn(conn).KillAtCall(killAt)
			conn = fc
		}
		cl, err := cluster.New([]cluster.Conn{conn}, g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.EnableRecovery(cluster.Recovery{
			Respawn: func(int) (cluster.Conn, error) { return nil, errors.New("no replacement") },
			Retries: 1,
			Backoff: time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		return cl
	}
	return mk(0x0111, true), mk(0x0222, false), fc
}

// TestServeDegradesOn WorkerLoss: losing the only R1 worker mid-growth
// must turn the query into a typed *DegradedError (503 + Retry-After on
// the HTTP surface) instead of a 500, and /statsz must report the worker
// down.
func TestServeDegradesOnWorkerLoss(t *testing.T) {
	g := testGraph(t)
	c1, c2, _ := fragileClusters(t, g, 1)
	s, err := New(Config{
		Graph: g, Model: diffusion.IC, Seed: 42,
		KMax: 10, EpsFloor: 0.3,
		C1: c1, C2: c2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	_, err = s.Query(5, 0.3)
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("query with dead R1 returned %v, want *DegradedError", err)
	}
	if deg.RetryAfter <= 0 {
		t.Fatalf("degraded error carries no Retry-After hint: %+v", deg)
	}

	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/v1/seeds", "application/json",
		jsonBody(t, map[string]any{"k": 5, "eps": 0.3}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded query -> %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("503 without a usable Retry-After header (%q)", ra)
	}

	st := s.Stats()
	if st.Degraded < 1 {
		t.Fatalf("degraded counter %d, want >= 1", st.Degraded)
	}
	if len(st.R1Workers) != 1 || st.R1Workers[0].Up {
		t.Fatalf("R1 worker health not down: %+v", st.R1Workers)
	}
	if len(st.R2Workers) != 1 || !st.R2Workers[0].Up {
		t.Fatalf("R2 worker health wrongly down: %+v", st.R2Workers)
	}

	// The health must also round-trip the HTTP stats endpoint.
	hresp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var wire struct {
		R1Workers []cluster.WorkerHealth `json:"r1_workers"`
		Degraded  int64                  `json:"degraded"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.R1Workers) != 1 || wire.R1Workers[0].Up || wire.Degraded < 1 {
		t.Fatalf("statsz payload lacks fault figures: %+v", wire)
	}
}

// TestServeAnswersFromSurvivingSample: a query the resident certificate
// already covers must keep being answered after the workers die — only
// growth needs them.
func TestServeAnswersFromSurvivingSample(t *testing.T) {
	g := testGraph(t)
	// Kill R1's worker after enough calls for the first query's growth
	// rounds to complete (each round is generate + degree-delta + fetch).
	c1, c2, fc := fragileClusters(t, g, 1<<30)
	s, err := New(Config{
		Graph: g, Model: diffusion.IC, Seed: 42,
		KMax: 10, EpsFloor: 0.3,
		CacheSize: -1, // disable the LRU so reuse hits the resident sample
		C1:        c1, C2: c2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	first, err := s.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	fc.KillAtCall(fc.Calls() + 1) // every further R1 call now fails

	again, err := s.Query(5, 0.3)
	if err != nil {
		t.Fatalf("resident-sample query after worker death: %v", err)
	}
	if again.Epoch != first.Epoch || len(again.Seeds) != len(first.Seeds) {
		t.Fatalf("surviving-sample answer changed: %+v vs %+v", again, first)
	}
	for i := range first.Seeds {
		if again.Seeds[i] != first.Seeds[i] {
			t.Fatal("surviving-sample answer not identical")
		}
	}

	// A harder query that needs growth degrades instead of failing hard.
	_, err = s.Query(10, 0.3)
	var deg *DegradedError
	if err != nil && !errors.As(err, &deg) {
		t.Fatalf("growth query after worker death returned %v, want success or *DegradedError", err)
	}
}
