package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dimm/internal/graph"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/seeds   {"k": 10, "eps": 0.2}        → Answer
//	POST /v1/update  {"seq": 1, "ops": [...]}     → UpdateResult (dynamic services)
//	GET  /v1/spread?seeds=1,2,3&rounds=10000      → spread estimate
//	GET  /healthz                                 → 200 "ok"
//	GET  /statsz                                  → Stats
//	GET  /metricsz                                → raw metric registry snapshot
//
// The two query endpoints sit behind admission control: at most
// Config.MaxInFlight requests run concurrently, the rest get 429 so a
// load spike degrades into fast rejections instead of a convoy on the
// sample locks.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/seeds", s.instrument("seeds", true, s.handleSeeds))
	mux.HandleFunc("POST /v1/update", s.instrument("update", true, s.handleUpdate))
	mux.HandleFunc("GET /v1/spread", s.instrument("spread", true, s.handleSpread))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", false, func(w http.ResponseWriter, r *http.Request) error {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return nil
	}))
	mux.HandleFunc("GET /statsz", s.instrument("statsz", false, func(w http.ResponseWriter, r *http.Request) error {
		writeJSON(w, http.StatusOK, s.Stats())
		return nil
	}))
	mux.HandleFunc("GET /metricsz", s.instrument("metricsz", false, func(w http.ResponseWriter, r *http.Request) error {
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
		return nil
	}))
	return mux
}

// instrument wraps a handler with admission control (when gated) and the
// per-endpoint latency/error accounting behind /statsz. Handlers signal
// a client error by returning an *httpError or a serve.BadQueryError;
// anything else is a 500.
func (s *Service) instrument(name string, gated bool, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	ep := s.http.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		if gated {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.http.rejected.Inc()
				// RFC 6585 says a 429 SHOULD tell the client when to come
				// back; admission-control rejections clear as soon as an
				// in-flight request finishes, so the minimum granularity.
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests,
					errBody{Error: "server at capacity, retry later"})
				return
			}
		}
		start := time.Now()
		err := h(w, r)
		ep.record(time.Since(start), err != nil)
		if err == nil {
			return
		}
		var he *httpError
		var bad *BadQueryError
		var deg *DegradedError
		switch {
		case errors.As(err, &he):
			writeJSON(w, he.status, errBody{Error: he.msg})
		case errors.As(err, &bad):
			writeJSON(w, http.StatusBadRequest, errBody{Error: bad.Error()})
		case errors.As(err, &deg):
			// Lost worker capacity: the service still answers whatever the
			// resident certificate covers, so tell clients when to retry
			// rather than treating this as a server bug.
			w.Header().Set("Retry-After",
				strconv.Itoa(int(deg.RetryAfter/time.Second)))
			writeJSON(w, http.StatusServiceUnavailable, errBody{Error: deg.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errBody{Error: err.Error()})
		}
	}
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

type errBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type seedsRequest struct {
	K   int     `json:"k"`
	Eps float64 `json:"eps"`
}

func (s *Service) handleSeeds(w http.ResponseWriter, r *http.Request) error {
	mode, err := ParseMode(r.URL.Query().Get("mode"))
	if err != nil {
		return err
	}
	var req seedsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return &httpError{http.StatusBadRequest, "bad request body: " + err.Error()}
	}
	ans, err := s.QueryMode(req.K, req.Eps, mode)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, ans)
	return nil
}

// updateRequest is the POST /v1/update body. Seq zero asks the service
// to assign the next sequence number; clients that retry after a lost
// ACK or a 503 should send an explicit seq so the replay is idempotent.
type updateRequest struct {
	Seq uint64     `json:"seq"`
	Ops []updateOp `json:"ops"`
}

type updateOp struct {
	Op   string  `json:"op"` // "add" | "remove" | "reweight"
	From uint32  `json:"from"`
	To   uint32  `json:"to"`
	Prob float32 `json:"prob,omitempty"`
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request) error {
	var req updateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return &httpError{http.StatusBadRequest, "bad request body: " + err.Error()}
	}
	ops := make([]graph.EdgeUpdate, len(req.Ops))
	for i, op := range req.Ops {
		eu := graph.EdgeUpdate{From: op.From, To: op.To, Prob: op.Prob}
		switch op.Op {
		case "add":
			eu.Op = graph.OpAdd
		case "remove":
			eu.Op = graph.OpRemove
		case "reweight":
			eu.Op = graph.OpReweight
		default:
			return &httpError{http.StatusBadRequest,
				fmt.Sprintf("op %d has unknown kind %q (want add|remove|reweight)", i, op.Op)}
		}
		ops[i] = eu
	}
	res, err := s.Update(req.Seq, ops)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, res)
	return nil
}

type spreadResponse struct {
	Seeds  []uint32 `json:"seeds"`
	Mode   Mode     `json:"mode"`
	Rounds int64    `json:"rounds,omitempty"`
	Mean   float64  `json:"mean"`
	Stderr float64  `json:"stderr"`
	// RelStderr is set on fast-mode answers: the sketch estimator's
	// relative standard error ≈ 1/√(K−2) (the absolute Stderr field is
	// Mean·RelStderr, kept for client compatibility).
	RelStderr float64 `json:"rel_stderr,omitempty"`
}

func (s *Service) handleSpread(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	raw := q.Get("seeds")
	if raw == "" {
		return &httpError{http.StatusBadRequest, "missing seeds parameter (comma-separated node ids)"}
	}
	parts := strings.Split(raw, ",")
	seeds := make([]uint32, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return &httpError{http.StatusBadRequest, "bad seed id " + strconv.Quote(p)}
		}
		seeds = append(seeds, uint32(v))
	}
	mode, err := ParseMode(q.Get("mode"))
	if err != nil {
		return err
	}
	if mode == ModeFast {
		// The fast tier answers from the resident sketches alone — no
		// Monte-Carlo rounds, no worker RPCs, no RR-sample lock.
		est, rel, err := s.SpreadSketch(seeds)
		if err != nil {
			return err
		}
		writeJSON(w, http.StatusOK, spreadResponse{
			Seeds: seeds, Mode: ModeFast, Mean: est,
			Stderr: est * rel, RelStderr: rel,
		})
		return nil
	}
	rounds := int64(10_000)
	if rs := q.Get("rounds"); rs != "" {
		v, err := strconv.ParseInt(rs, 10, 64)
		if err != nil {
			return &httpError{http.StatusBadRequest, "bad rounds value " + strconv.Quote(rs)}
		}
		rounds = v
	}
	mean, stderr, err := s.Spread(seeds, rounds)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, spreadResponse{Seeds: seeds, Mode: ModeCertified, Rounds: rounds, Mean: mean, Stderr: stderr})
	return nil
}
