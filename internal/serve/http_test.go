package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func testServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := testService(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postSeeds(t *testing.T, url string, k int, eps float64) (*Answer, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"k": k, "eps": eps})
	resp, err := http.Post(url+"/v1/seeds", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var ans Answer
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		t.Fatal(err)
	}
	return &ans, resp.StatusCode
}

func TestHTTPSeeds(t *testing.T) {
	_, ts := testServer(t, Config{})
	ans, code := postSeeds(t, ts.URL, 5, 0.3)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/seeds -> %d", code)
	}
	if len(ans.Seeds) != 5 || ans.Ratio <= 0 {
		t.Fatalf("bad answer: %+v", ans)
	}

	// Inadmissible query -> 400, not 500.
	if _, code := postSeeds(t, ts.URL, 0, 0.3); code != http.StatusBadRequest {
		t.Fatalf("k=0 -> %d, want 400", code)
	}
	// Malformed body -> 400.
	resp, err := http.Post(ts.URL+"/v1/seeds", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body -> %d, want 400", resp.StatusCode)
	}
	// Wrong method -> 405 from the method-pattern mux.
	resp, err = http.Get(ts.URL + "/v1/seeds")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/seeds -> %d, want 405", resp.StatusCode)
	}
}

func TestHTTPSpreadAndHealth(t *testing.T) {
	_, ts := testServer(t, Config{})
	ans, _ := postSeeds(t, ts.URL, 3, 0.3)

	var seedsCSV string
	for i, u := range ans.Seeds {
		if i > 0 {
			seedsCSV += ","
		}
		seedsCSV += fmt.Sprint(u)
	}
	resp, err := http.Get(ts.URL + "/v1/spread?seeds=" + seedsCSV + "&rounds=1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/spread -> %d", resp.StatusCode)
	}
	var sp spreadResponse
	if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
		t.Fatal(err)
	}
	if sp.Mean <= 0 || sp.Rounds != 1000 {
		t.Fatalf("bad spread response: %+v", sp)
	}

	resp, err = http.Get(ts.URL + "/v1/spread?seeds=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seeds -> %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz -> %d", resp.StatusCode)
	}
}

func TestHTTPStatsz(t *testing.T) {
	_, ts := testServer(t, Config{})
	postSeeds(t, ts.URL, 5, 0.3)
	postSeeds(t, ts.URL, 5, 0.3) // cache hit

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 2 || st.CacheHits != 1 {
		t.Fatalf("stats queries=%d cacheHits=%d, want 2/1", st.Queries, st.CacheHits)
	}
	if st.Theta == 0 || st.Generated == 0 || st.Epoch == 0 {
		t.Fatalf("sample counters empty: %+v", st)
	}
	ep, ok := st.Endpoint["seeds"]
	if !ok {
		t.Fatalf("no endpoint stats for seeds: %v", st.Endpoint)
	}
	if ep.Count != 2 || ep.Errors != 0 || ep.P99Ms < ep.P50Ms {
		t.Fatalf("bad endpoint snapshot: %+v", ep)
	}
}

// TestHTTPAdmissionControl: with MaxInFlight=1 and the single slot held,
// a concurrent query is rejected with 429 and counted.
func TestHTTPAdmissionControl(t *testing.T) {
	s, ts := testServer(t, Config{MaxInFlight: 1})
	s.sem <- struct{}{} // occupy the only slot
	_, code := postSeeds(t, ts.URL, 5, 0.3)
	<-s.sem
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated server -> %d, want 429", code)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	// Slot released: the same query now succeeds.
	if _, code := postSeeds(t, ts.URL, 5, 0.3); code != http.StatusOK {
		t.Fatalf("post-release query -> %d", code)
	}
}

// TestHTTPConcurrent drives mixed queries through the full HTTP stack
// (run with -race to exercise handler/grower interleavings).
func TestHTTPConcurrent(t *testing.T) {
	_, ts := testServer(t, Config{Machines: 2})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for q := 0; q < 4; q++ {
				k := 1 + (i+q)%10
				body, _ := json.Marshal(map[string]any{"k": k, "eps": 0.3})
				resp, err := http.Post(ts.URL+"/v1/seeds", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("k=%d: %v", k, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("k=%d -> %d", k, resp.StatusCode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
