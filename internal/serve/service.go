// Package serve is the resident influence-maximization query service:
// the long-lived counterpart to the one-shot drivers in internal/core.
// A Service loads the graph once, keeps a cluster of sampling workers
// warm across requests, and maintains a resident pair of RR-set
// collections (R1 drives greedy selection through its segmented inverted
// index, the independent R2 backs the per-query OPIM-C certificate)
// sized for a configured (k_max, ε_floor, δ).
//
// A query (k, ε) is answered from the resident sample whenever the
// certificate already reaches 1 − 1/e − ε — zero new RR generation, the
// amortize-the-sketch economics of sketch-based influence oracles — and
// only otherwise triggers an incremental doubling round: the clusters
// generate, the master pulls just the new sets (cluster.FetchNew), and
// the inverted indexes extend in place (rrset.Index.AppendFrom).
//
// Concurrency follows an RWMutex epoch scheme: any number of readers
// select seeds over the resident sample concurrently (selection state is
// per-query), while at most one grower extends it; the slow part of
// growth (cluster RPCs) happens outside the write lock, which is held
// only for the append + reindex. Every answer is a deterministic
// function of (seed, machines, parallelism, epoch).
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/core"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/imm"
	"dimm/internal/metrics"
	"dimm/internal/rrset"
	"dimm/internal/sketch"
	"dimm/internal/store"
)

// Config describes a Service deployment.
type Config struct {
	Graph *graph.Graph
	Model diffusion.Model
	// Subset enables SUBSIM subset sampling on the workers.
	Subset bool
	// Seed is the base RNG seed; the R1/R2 clusters sample independent
	// streams derived from it exactly like core.RunDOPIMC.
	Seed uint64
	// Machines is ℓ, the number of workers per collection (default 1).
	// Ignored when C1/C2 are supplied.
	Machines int
	// Parallelism is the per-worker shard count (see core.Options).
	Parallelism int
	// Batch is the frontier-batch width of each worker's sampling shards
	// (see core.Options.Batch): 0 selects rrset.DefaultBatch, 1 the
	// scalar kernel. Not part of the checkpoint fingerprint — the
	// sampled bytes are batch-invariant, so a checkpoint written at one
	// width restores correctly at any other.
	Batch int

	// Dynamic enables the streaming graph-update API (POST /v1/update):
	// the graph is switched into mutable-overlay mode before the clusters
	// are built, and edge-update batches flow through the cluster RPC to
	// the workers, which repair the resident RR sample incrementally
	// (internal/mutate) instead of discarding it. Incompatible with
	// Subset (subset sampling assumes a frozen uniform weight; the
	// samplers reject mutable graphs) and with Restore (a restored sample
	// has no lane provenance, so it could not be repaired — dynamic
	// services start cold; their checkpoints record graph-delta segments
	// for offline tooling instead).
	Dynamic bool

	// SketchK sets the bottom-k size of the resident sketch tier backing
	// ?mode=fast queries (internal/sketch): 0 selects
	// core.DefaultSketchK, negative disables the fast tier entirely.
	// The sketch rides on the same RR instances the certificates use and
	// rebuilds incrementally after every growth epoch; it never affects
	// certified answers.
	SketchK int

	// KMax bounds the admissible query seed-set size (default 50).
	KMax int
	// EpsFloor is the tightest admissible query ε (default 0.1); the
	// resident sample's growth cap is sized for (KMax, EpsFloor).
	EpsFloor float64
	// Delta is the service-lifetime failure probability (default 1/n):
	// with probability ≥ 1 − δ, every certificate ever issued is valid.
	Delta float64

	// CacheSize bounds the LRU of recent (k, ε) answers (default 256;
	// negative disables caching).
	CacheSize int
	// MaxInFlight bounds concurrently admitted HTTP requests; excess
	// requests get 429 (default 64).
	MaxInFlight int

	// Retries and RetryBackoff shape the fault-tolerance schedule the
	// Service installs on its in-process clusters (cmd/dimmsrv mirrors
	// them onto dialed workers): how many times a failed worker is
	// respawned and resynced before being quarantined, and the base of
	// the capped exponential backoff between attempts. Zero means
	// cluster.DefaultRetries / cluster.DefaultRetryBackoff.
	Retries      int
	RetryBackoff time.Duration

	// CheckpointDir enables the durable RR-sample store (internal/store):
	// after every growth epoch the new RR sets are appended to a
	// checkpoint in this directory, pinned to the service's full sampling
	// fingerprint. Empty disables checkpointing.
	CheckpointDir string
	// Restore replays the checkpoint at CheckpointDir on startup, so the
	// resident sample is warm before the first query with zero worker
	// traffic. Requires in-process machines (no C1/C2): post-restore
	// growth re-salts the worker RR streams with the restored epoch, which
	// cannot be done to externally-seeded workers. A non-empty checkpoint
	// directory without Restore is an error — appending a fresh run to an
	// old checkpoint would fork its history.
	Restore bool
	// WeightTag optionally names the edge-weight model ("wc", ...) for
	// the checkpoint fingerprint; the graph content hash already pins the
	// actual weights, this adds a readable guard for tooling.
	WeightTag string

	// C1/C2 optionally supply pre-built clusters (e.g. TCP workers dialed
	// by cmd/dimmsrv) backing R1 and R2. Both must be set together; the
	// Service takes ownership and closes them. Their workers must sample
	// independent streams for the certificate to be sound.
	C1, C2 *cluster.Cluster
}

func (c Config) withDefaults() Config {
	if c.Machines == 0 {
		c.Machines = 1
	}
	if c.KMax == 0 {
		c.KMax = 50
	}
	if c.EpsFloor == 0 {
		c.EpsFloor = 0.1
	}
	if c.Delta == 0 && c.Graph != nil {
		c.Delta = 1 / float64(c.Graph.NumNodes())
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	return c
}

// Mode selects which query tier answers: the certified path (default,
// full OPIM-C machinery, the (1 − 1/e − ε) guarantee) or the fast path
// (seeds pre-ranked by the bottom-k sketch tier, then verified by the
// same certificate machinery before being served).
type Mode string

const (
	ModeCertified Mode = "certified"
	ModeFast      Mode = "fast"
)

// ParseMode maps the ?mode= query value onto a Mode; empty selects
// certified, so existing clients keep their exact behavior.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", string(ModeCertified):
		return ModeCertified, nil
	case string(ModeFast):
		return ModeFast, nil
	}
	return "", badQueryf("serve: unknown mode %q (want fast|certified)", s)
}

// Answer is one served seed-set query.
type Answer struct {
	K     int      `json:"k"`
	Eps   float64  `json:"eps"`
	Seeds []uint32 `json:"seeds"`

	// Mode records which tier selected the seeds. Both tiers' answers
	// carry a certificate; only certified-mode selection is the exact
	// greedy the (1 − 1/e − ε) analysis covers (see DESIGN.md).
	Mode Mode `json:"mode"`

	// Epoch identifies the resident-sample generation the answer was
	// computed on; Theta is that sample's size (per collection).
	Epoch uint64 `json:"epoch"`
	Theta int64  `json:"theta"`
	// GraphVersion is the graph-update sequence number the answering
	// sample was repaired to — 0 until the first POST /v1/update. The
	// certificate certifies the answer on exactly this graph version.
	GraphVersion uint64 `json:"graph_version,omitempty"`

	// The OPIM-C certificate: σ(Seeds) ≥ SpreadLower and OPT ≤ OptUpper,
	// each with the service's δ budget, so Ratio ≥ 1 − 1/e − ε certifies
	// the approximation.
	SpreadLower float64 `json:"spread_lower"`
	OptUpper    float64 `json:"opt_upper"`
	Ratio       float64 `json:"ratio"`
	// EstSpread is the unbiased point estimate n·cov2/θ from R2.
	EstSpread float64 `json:"est_spread"`
	// SketchSpread is the fast tier's own σ estimate for the answer's
	// seeds (zero on certified answers): n·union/θ over the bottom-k
	// sketches, relative standard error ≈ 1/√(K−2).
	SketchSpread float64 `json:"sketch_spread,omitempty"`

	// GrowRounds counts the doubling rounds this query triggered (0 = the
	// resident sample was reused as-is). Cached marks an LRU hit.
	GrowRounds int  `json:"grow_rounds"`
	Cached     bool `json:"cached"`
}

// BadQueryError reports an inadmissible query; the HTTP layer maps it to
// a 400 instead of a 500.
type BadQueryError struct{ msg string }

func (e *BadQueryError) Error() string { return e.msg }

func badQueryf(format string, args ...any) error {
	return &BadQueryError{msg: fmt.Sprintf(format, args...)}
}

// DegradedError reports that a request needed worker capacity that is
// currently lost: the resident sample could not grow (or the spread
// estimator had no live workers) because failover exhausted its retry
// budget. Queries the current certificate already covers keep being
// answered; the HTTP layer maps this to 503 with a Retry-After header
// so clients back off while workers are respawned or redialed.
type DegradedError struct {
	RetryAfter time.Duration
	Err        error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("serve: degraded (worker capacity lost, retry in %s): %v", e.RetryAfter, e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }

// degradeRetryAfter is the backoff hint handed to clients on 503: long
// enough for a redial/respawn cycle, short enough to probe recovery.
const degradeRetryAfter = 5 * time.Second

// degraded wraps worker-loss errors (cluster.IsWorkerLoss) in a
// DegradedError and counts them; other errors pass through unchanged.
func (s *Service) degraded(err error) error {
	if err == nil || !cluster.IsWorkerLoss(err) {
		return err
	}
	s.stats.degraded.Inc()
	return &DegradedError{RetryAfter: degradeRetryAfter, Err: err}
}

// Service is the resident query service. Create with New, serve HTTP via
// Handler, and Close when done.
type Service struct {
	cfg    Config
	n      int
	par    int // resolved worker parallelism, reused by query-time selection
	batch  int // resolved frontier-batch width of the workers' samplers
	budget core.SampleBudget

	// clusterMu serializes all RPCs on the warm clusters (the cluster
	// types are single-caller); only the grower and Spread take it.
	clusterMu sync.Mutex
	c1, c2    *cluster.Cluster

	// mu is the epoch lock: read-held during selection/certification,
	// write-held only while growth appends and reindexes.
	mu         sync.RWMutex
	epoch      uint64
	gver       uint64 // graph version the published sample is repaired to
	r1, r2     *rrset.Collection
	idx1, idx2 *rrset.Index
	fetched1   []int // per-worker fetch cursors into the R1 cluster
	fetched2   []int

	// spans1/spans2 map worker-local RR positions to master positions in
	// r1/r2 — the translation table for splicing worker repair patches
	// into the mirrors. Written by the grower and the updater (both under
	// growMu), read by the updater under growMu.
	spans1, spans2 []cluster.FetchSpan

	// updateDebt marks a partially applied update: the master graph
	// advanced but the clusters (or the mirror splice) did not complete.
	// While set, queries are refused 503 (the mirror's certificate no
	// longer matches the graph) until a retried update heals the state.
	updateDebt atomic.Bool

	// growMu admits one grower at a time; queries needing more sample
	// queue on it and re-check the epoch afterwards.
	growMu sync.Mutex

	// sketchMu guards the fast tier's bottom-k sketch set, separately
	// from mu so ?mode=fast spread reads never touch the RR sample's
	// lock: any number of fast readers proceed while a certified query
	// holds mu, and only the grower (already serialized by growMu)
	// write-locks it to absorb a growth epoch. nil sk = tier disabled.
	sketchMu   sync.RWMutex
	sk         *sketch.Set
	skEpoch    uint64 // sample epoch the sketch last absorbed or rebuilt to
	skRestored bool

	cache *answerCache
	sem   chan struct{} // admission-control slots (HTTP layer)

	// st is the durable RR-sample store (nil when checkpointing is off).
	// Only the grower touches it, under growMu.
	st             *store.Store
	restoredEpochs int   // checkpoint segments replayed at startup
	restoredTheta  int64 // per-collection RR sets restored at startup

	// reg is the service's metric registry; stats and http hold the
	// typed handles recorded through on the query paths. /metricsz
	// exports reg merged with the two clusters' registries.
	reg   *metrics.Registry
	stats serviceCounters
	http  httpCounters

	closed atomic.Bool
}

// serviceCounters is the query-path accounting exposed on /statsz —
// registry handles resolved once at New, so recording stays one atomic
// per event while /statsz and /metricsz snapshot concurrently.
type serviceCounters struct {
	queries    *metrics.Counter // Query calls that produced an answer
	cacheHits  *metrics.Counter // served from the LRU
	reuseHits  *metrics.Counter // served from the resident sample, zero growth
	growRounds *metrics.Counter // doubling rounds executed
	generated  *metrics.Counter // RR sets generated since startup (R1 + R2)

	ckptEpochs *metrics.Counter // checkpoint segments written since startup
	ckptBytes  *metrics.Counter // checkpoint bytes written since startup
	ckptErrors *metrics.Counter // failed checkpoint attempts (queries unaffected)
	ckptNanos  *metrics.Counter // wall time spent writing checkpoints

	degraded *metrics.Counter // requests refused 503 for lost worker capacity

	// Dynamic-graph accounting: update batches applied, RR sets repaired
	// in place across both mirrors, full re-mirrors forced by a cluster
	// rebalance mid-update, and fast-mode queries that fell back to the
	// certified tier because the sketch lagged the sample epoch.
	updates      *metrics.Counter
	repairedSets *metrics.Counter
	remirrors    *metrics.Counter
	skStale      *metrics.Counter

	// Fast-tier accounting: sketch build passes and their wall time
	// (one univariate observation per pass), estimator evaluations
	// served, fast-mode queries per endpoint, and the fast/certified
	// agreement samples collected whenever both tiers answered the same
	// (k, ε) on the same epoch.
	skBuild      *metrics.Univariate
	skEstimates  *metrics.Counter
	fastSeeds    *metrics.Counter
	fastSpreads  *metrics.Counter
	agreeChecked *metrics.Counter
	agreeMatched *metrics.Counter

	// batchMu guards the last-seen cumulative batch counters reported by
	// the two clusters' workers. The grower overwrites them after every
	// Generate broadcast; Stats() only reads, so a snapshot never waits
	// on an in-flight grow round's RPCs. (BatchStats is a last-reported
	// cumulative struct, not a monotone accumulation, so it stays
	// mutex-guarded rather than registry-backed.)
	batchMu  sync.Mutex
	batch1   rrset.BatchStats // R1 cluster, cumulative since startup
	batch2   rrset.BatchStats // R2 cluster, cumulative since startup
	genCalls int64            // Generate broadcasts issued by the grower
}

func newServiceCounters(reg *metrics.Registry) serviceCounters {
	return serviceCounters{
		queries:      reg.Counter("svc.queries"),
		cacheHits:    reg.Counter("svc.cache_hits"),
		reuseHits:    reg.Counter("svc.reuse_hits"),
		growRounds:   reg.Counter("svc.grow_rounds"),
		generated:    reg.Counter("svc.generated"),
		ckptEpochs:   reg.Counter("svc.ckpt.epochs"),
		ckptBytes:    reg.Counter("svc.ckpt.bytes"),
		ckptErrors:   reg.Counter("svc.ckpt.errors"),
		ckptNanos:    reg.Counter("svc.ckpt.ns"),
		degraded:     reg.Counter("svc.degraded"),
		updates:      reg.Counter("svc.update.calls"),
		repairedSets: reg.Counter("svc.update.repaired_sets"),
		remirrors:    reg.Counter("svc.update.remirrors"),
		skStale:      reg.Counter("svc.sketch.stale"),
		skBuild:      reg.Univariate("svc.sketch.build_ns"),
		skEstimates:  reg.Counter("svc.sketch.estimates"),
		fastSeeds:    reg.Counter("svc.fast.seed_queries"),
		fastSpreads:  reg.Counter("svc.fast.spread_queries"),
		agreeChecked: reg.Counter("svc.fast.agree_checked"),
		agreeMatched: reg.Counter("svc.fast.agree_matched"),
	}
}

// New builds the service and its warm clusters. The resident sample
// starts empty; the first query (or Warm) grows it to θ₀ and onward.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.Graph == nil {
		return nil, fmt.Errorf("serve: config needs a graph")
	}
	n := cfg.Graph.NumNodes()
	if cfg.KMax < 1 || cfg.KMax >= n {
		return nil, fmt.Errorf("serve: kmax %d outside [1, %d)", cfg.KMax, n)
	}
	if cfg.EpsFloor <= 0 || cfg.EpsFloor >= 1 {
		return nil, fmt.Errorf("serve: eps floor %v outside (0, 1)", cfg.EpsFloor)
	}
	budget, err := core.PlanResidentSample(n, cfg.KMax, cfg.EpsFloor, cfg.Delta)
	if err != nil {
		return nil, err
	}
	if cfg.Dynamic {
		if cfg.Subset {
			return nil, fmt.Errorf("serve: dynamic graphs cannot use subset sampling (the geometric-skip generator assumes frozen uniform weights)")
		}
		if cfg.Restore {
			return nil, fmt.Errorf("serve: dynamic services cannot restore: a restored sample has no lane provenance to repair from; start cold or serve the checkpoint statically")
		}
		if err := cfg.Graph.EnableMutation(); err != nil {
			return nil, fmt.Errorf("serve: dynamic mode: %w", err)
		}
	}
	reg := metrics.NewRegistry()
	s := &Service{
		cfg:    cfg,
		n:      n,
		budget: budget,
		r1:     rrset.NewCollection(1 << 16),
		r2:     rrset.NewCollection(1 << 16),
		cache:  newAnswerCache(cfg.CacheSize),
		sem:    make(chan struct{}, cfg.MaxInFlight),
		reg:    reg,
		stats:  newServiceCounters(reg),
	}
	s.http.init(reg)
	if (cfg.C1 == nil) != (cfg.C2 == nil) {
		return nil, fmt.Errorf("serve: C1 and C2 must be supplied together")
	}
	par := core.ResolveParallelism(cfg.Parallelism, cfg.Machines)
	s.par = par
	s.batch = cluster.ResolveBatch(cfg.Batch)
	if cfg.SketchK >= 0 {
		kk := cfg.SketchK
		if kk == 0 {
			kk = core.DefaultSketchK
		}
		// The sketch's rank stream gets its own split of the base seed,
		// like the 0x0111/0x0222 split that keeps R1 and R2 independent.
		if s.sk, err = sketch.New(n, sketch.Params{K: kk, Seed: cfg.Seed ^ 0x0333}); err != nil {
			return nil, err
		}
	}

	// Open the durable store (and restore from it) before the clusters
	// exist: a restore determines the stream salt the workers are seeded
	// with.
	var salt uint64
	if cfg.CheckpointDir != "" {
		st, err := store.Open(cfg.CheckpointDir, store.Fingerprint{
			GraphHash:   cfg.Graph.ContentHash(),
			Model:       cfg.Model.String(),
			WeightModel: cfg.WeightTag,
			Subset:      cfg.Subset,
			Seed:        cfg.Seed,
			Machines:    cfg.Machines,
			Parallelism: par,
			KMax:        cfg.KMax,
			EpsFloor:    cfg.EpsFloor,
		})
		if err != nil {
			return nil, err
		}
		s.st = st
		switch {
		case cfg.Restore:
			if cfg.C1 != nil {
				return nil, fmt.Errorf("serve: restore requires in-process machines: pre-built clusters cannot have their RR streams re-salted for post-restore growth")
			}
			res, err := st.Restore(n)
			if err == nil {
				s.r1, s.r2 = res.R1, res.R2
				s.idx1, s.idx2 = res.Idx1, res.Idx2
				s.epoch = res.Epoch
				s.restoredEpochs = res.Epochs
				s.restoredTheta = int64(res.R1.Count())
				// Salt post-restore worker streams with the restored epoch:
				// the fresh workers must not replay the PRNG prefix that
				// produced the restored sets, or regrowth would append
				// duplicates instead of independent samples. Zero on a cold
				// start, so non-restored runs keep their exact historic
				// streams (and stay bit-identical with pre-store builds).
				salt = res.Epoch * 0x9E3779B97F4A7C15
				// Adopt the stored sketch only when it matches this config's
				// sketch parameters and does not claim more instances than
				// the restored sample holds; anything else (different K,
				// different seed, stale record) falls back to a rebuild —
				// a sketch is always recomputable from the RR sample.
				if s.sk != nil {
					if rsk, _, skErr := st.RestoreSketch(n); skErr == nil &&
						rsk.Verify(n, sketch.Params{K: s.sk.K(), Seed: s.sk.Seed()}) == nil &&
						rsk.Theta() <= int64(res.R1.Count()) {
						s.sk = rsk
						s.skRestored = true
					}
				}
			} else if !errors.Is(err, store.ErrNoCheckpoint) {
				return nil, err
			}
		case st.Epochs() > 0:
			return nil, fmt.Errorf("serve: checkpoint directory %s already holds %d epochs; enable restore (dimmsrv -restore) to resume from it, or point at an empty directory", cfg.CheckpointDir, st.Epochs())
		}
	}

	if cfg.C1 != nil {
		s.c1, s.c2 = cfg.C1, cfg.C2
	} else {
		mk := func(tag uint64) (*cluster.Cluster, error) {
			cfgs := make([]cluster.WorkerConfig, cfg.Machines)
			for i := range cfgs {
				cfgs[i] = cluster.WorkerConfig{
					Graph:       cfg.Graph,
					Model:       cfg.Model,
					Subset:      cfg.Subset,
					Seed:        cluster.DeriveSeed(cfg.Seed^tag^salt, i),
					Parallelism: par,
					Batch:       cfg.Batch,
				}
			}
			cl, err := cluster.NewLocal(cfgs, n)
			if err != nil {
				return nil, err
			}
			// In-process workers respawn from their configs, so a failed
			// worker is replaced with a bit-identical replay instead of
			// taking the resident sample's growth down with it.
			_ = cl.EnableRecovery(cluster.Recovery{
				Respawn: func(i int) (cluster.Conn, error) {
					w, err := cluster.NewWorker(cfgs[i])
					if err != nil {
						return nil, err
					}
					return cluster.NewLocalConn(w), nil
				},
				Retries: cfg.Retries,
				Backoff: cfg.RetryBackoff,
				Salt:    cfg.Seed ^ tag,
			})
			return cl, nil
		}
		// The same stream split as core.RunDOPIMC: R1 and R2 must be
		// independent for the certificate's lower bound to be unbiased.
		if s.c1, err = mk(0x0111); err != nil {
			return nil, err
		}
		if s.c2, err = mk(0x0222); err != nil {
			s.c1.Close()
			return nil, err
		}
	}
	// Catch the sketch up to whatever the restore produced (a no-op on a
	// cold start, an incremental absorb when the stored sketch lags the
	// stored sample, a full build when only the sample restored).
	s.updateSketch()
	return s, nil
}

// Close shuts the worker clusters down. In-flight queries that already
// hold the sample locks finish from the resident state; growth after
// Close fails.
func (s *Service) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	// Close both clusters unconditionally and join the errors: an early
	// return on err1 would leak C2's worker goroutines/connections and
	// silently drop err2.
	return errors.Join(s.c1.Close(), s.c2.Close())
}

// Warm grows the resident sample until the hardest admissible query
// (KMax, EpsFloor) is certified, so subsequent queries are served with
// zero generation. Returns that query's answer.
func (s *Service) Warm() (*Answer, error) {
	return s.Query(s.cfg.KMax, s.cfg.EpsFloor)
}

// KMax returns the largest admissible query seed-set size.
func (s *Service) KMax() int { return s.cfg.KMax }

// EpsFloor returns the tightest admissible query ε.
func (s *Service) EpsFloor() float64 { return s.cfg.EpsFloor }

// Query answers an influence-maximization query: k seeds with a
// certified (1 − 1/e − ε)-approximation. It reuses the resident sample
// when the certificate suffices and grows it otherwise, up to the
// (KMax, EpsFloor) cap — at the cap the answer carries the best
// certificate the worst-case-sized sample supports (the IMM guarantee
// still applies to it with probability 1 − δ).
func (s *Service) Query(k int, eps float64) (*Answer, error) {
	return s.QueryMode(k, eps, ModeCertified)
}

// QueryMode answers a query on the requested tier. Certified is Query.
// Fast pre-ranks the seeds with the bottom-k sketch tier (O(k·K) merges
// instead of a greedy pass over the RR index), then runs the same
// certificate machinery over those seeds and only grows the resident
// sample when the certificate falls short of 1 − 1/e − ε. Fast answers
// therefore still carry a sound spread lower bound; what they give up is
// the greedy-selection premise of the (1 − 1/e − ε) analysis (see
// DESIGN.md).
func (s *Service) QueryMode(k int, eps float64, mode Mode) (*Answer, error) {
	if k < 1 || k > s.cfg.KMax {
		return nil, badQueryf("serve: k=%d outside [1, kmax=%d]", k, s.cfg.KMax)
	}
	if eps < s.cfg.EpsFloor || eps >= 1 {
		return nil, badQueryf("serve: eps=%v outside [floor=%v, 1)", eps, s.cfg.EpsFloor)
	}
	if mode == ModeFast && s.sk == nil {
		return nil, badQueryf("serve: fast tier disabled (sketch-k < 0)")
	}
	if s.updateDebt.Load() {
		// A graph update partially applied: the master graph moved past
		// the resident mirror, so certificates no longer describe the
		// current graph. Refuse with a retry hint until an update retry
		// (idempotent, version-gated) heals the state.
		s.stats.degraded.Inc()
		return nil, &DegradedError{RetryAfter: degradeRetryAfter,
			Err: fmt.Errorf("serve: resident sample behind the graph after an interrupted update; retry the update")}
	}
	if ans, ok := s.cache.get(k, eps, mode); ok {
		s.stats.queries.Inc()
		s.stats.cacheHits.Inc()
		hit := *ans
		hit.Cached = true
		return &hit, nil
	}
	target := 1 - 1/math.E - eps
	grew := 0
	for {
		var (
			ans  *Answer
			done bool
			err  error
		)
		if mode == ModeFast {
			ans, done, err = s.tryServeFast(k, eps, target, grew)
		} else {
			ans, done, err = s.tryServe(k, eps, target, grew)
		}
		if err != nil {
			return nil, err
		}
		if done {
			return ans, nil
		}
		if err := s.grow(ans.Epoch); err != nil {
			return nil, err
		}
		grew++
	}
}

// tryServe attempts one selection + certification pass over the current
// resident sample. done=false means the certificate fell short and the
// sample can still grow; the returned answer then only carries the epoch
// the attempt saw.
func (s *Service) tryServe(k int, eps, target float64, grew int) (*Answer, bool, error) {
	s.mu.RLock()
	epoch := s.epoch
	gver := s.gver
	theta := int64(s.r1.Count())
	if theta == 0 {
		s.mu.RUnlock()
		return &Answer{Epoch: epoch}, false, nil
	}
	sel, err := core.SelectFromSample(s.r1, s.idx1, s.n, k, s.par)
	if err != nil {
		s.mu.RUnlock()
		return nil, false, err
	}
	cov2s := prefixCoverage(s.idx2, s.r2.Count(), sel.Seeds)
	s.mu.RUnlock()

	// Certify every greedy prefix, not just the queried k. Small prefixes
	// are the binding constraint (few covered sets → relatively more
	// Chernoff slack), and greedy prefix consistency means a later query
	// with k' < k at eps' ≥ eps returns exactly Seeds[:k'] — so once all
	// prefixes certify here, that later query is guaranteed to be served
	// from the resident sample with zero new RR generation.
	var cert imm.Certificate
	allPass := true
	var cov1 int64
	for i := 0; i < k; i++ {
		cov1 += sel.Marginals[i]
		cert = core.CertifySelection(s.n, theta, cov1, cov2s[i], s.budget.TailMass)
		if cert.Ratio < target {
			allPass = false
		}
	}
	cov2 := cov2s[k-1]
	if !allPass && theta < s.budget.ThetaMax {
		return &Answer{Epoch: epoch}, false, nil
	}
	ans := &Answer{
		K:            k,
		Eps:          eps,
		Seeds:        sel.Seeds,
		Mode:         ModeCertified,
		Epoch:        epoch,
		GraphVersion: gver,
		Theta:        theta,
		SpreadLower:  cert.SpreadLower,
		OptUpper:     cert.OptUpper,
		Ratio:        cert.Ratio,
		EstSpread:    float64(s.n) * float64(cov2) / float64(theta),
		GrowRounds:   grew,
	}
	s.cache.put(k, eps, ModeCertified, ans)
	s.noteAgreement(ans)
	s.stats.queries.Inc()
	if grew == 0 {
		s.stats.reuseHits.Inc()
	}
	return ans, true, nil
}

// prefixCoverage returns, for each prefix seeds[:i+1], the number of the
// index's RR sets it covers, via the inverted index and a per-query mark
// array sized count. Caller holds mu (read); both tiers' certification
// paths share it.
func prefixCoverage(idx *rrset.Index, count int, seeds []uint32) []int64 {
	mark := make([]bool, count)
	out := make([]int64, len(seeds))
	var covered int64
	for i, u := range seeds {
		for si := 0; si < idx.NumSegments(); si++ {
			for _, j := range idx.SegCovers(si, u) {
				if j&rrset.DeadPosting != 0 {
					continue
				}
				if !mark[j] {
					mark[j] = true
					covered++
				}
			}
		}
		out[i] = covered
	}
	return out
}

// sketchCandidatePool sizes the fast tier's sketch-ranked candidate
// shortlist: wide enough that exact greedy's picks virtually never fall
// outside it (the pruning error the estimator's ≈ 1/√(K−2) noise can
// cause), narrow enough that restricted selection stays O(k) in live
// candidates instead of O(n).
func sketchCandidatePool(k, n int) int {
	c := 16 * k
	if c < 64 {
		c = 64
	}
	if c > n {
		c = n
	}
	return c
}

// tryServeFast is tryServe's fast-tier counterpart: the bottom-k
// sketches rank a candidate shortlist (under sketchMu only), exact
// greedy runs over the RR sample restricted to that shortlist, and the
// same certificate machinery verifies the outcome — actual prefix
// coverages on R1 feed the OPT upper bound, R2 the spread lower bound.
// done=false means the certificate fell short and the caller should grow
// (which also re-absorbs the new instances into the sketch, so the next
// attempt re-ranks on fresher estimates).
func (s *Service) tryServeFast(k int, eps, target float64, grew int) (*Answer, bool, error) {
	s.sketchMu.RLock()
	skTheta := s.sk.Theta()
	skEpoch := s.skEpoch
	var cands []uint32
	var evals int
	if skTheta > 0 {
		cands, evals = s.sk.TopCandidates(sketchCandidatePool(k, s.n))
	}
	s.sketchMu.RUnlock()
	s.stats.skEstimates.Add(int64(evals))

	s.mu.RLock()
	epoch := s.epoch
	gver := s.gver
	theta := int64(s.r1.Count())
	if skTheta == 0 || theta == 0 || len(cands) == 0 {
		s.mu.RUnlock()
		return &Answer{Epoch: epoch}, false, nil // cold: growth builds the sketch
	}
	if skEpoch != epoch {
		// The sketch lags the published sample (a growth or repair epoch
		// it has not absorbed): its rankings are stale, so serve this
		// query from the certified tier instead of pre-ranking on them.
		s.mu.RUnlock()
		s.stats.skStale.Inc()
		return s.tryServe(k, eps, target, grew)
	}
	sel, err := core.SelectFromSampleCandidates(s.r1, s.idx1, s.n, k, s.par, cands)
	if err != nil {
		s.mu.RUnlock()
		return nil, false, err
	}
	seeds := sel.Seeds
	cov2s := prefixCoverage(s.idx2, s.r2.Count(), seeds)
	s.mu.RUnlock()

	// The sketch's own spread estimate for the answer, for clients that
	// want to compare the tiers (and the bench agreement sweep).
	s.sketchMu.RLock()
	skSpread, unionEvals := s.sk.EstimateSpreadSet(seeds)
	s.sketchMu.RUnlock()
	s.stats.skEstimates.Add(int64(unionEvals))

	var cert imm.Certificate
	allPass := true
	var cov1 int64
	for i := 0; i < k; i++ {
		cov1 += sel.Marginals[i]
		cert = core.CertifySelection(s.n, theta, cov1, cov2s[i], s.budget.TailMass)
		if cert.Ratio < target {
			allPass = false
		}
	}
	if !allPass && theta < s.budget.ThetaMax {
		return &Answer{Epoch: epoch}, false, nil
	}
	ans := &Answer{
		K:            k,
		Eps:          eps,
		Seeds:        seeds,
		Mode:         ModeFast,
		Epoch:        epoch,
		GraphVersion: gver,
		Theta:        theta,
		SpreadLower:  cert.SpreadLower,
		OptUpper:     cert.OptUpper,
		Ratio:        cert.Ratio,
		EstSpread:    float64(s.n) * float64(cov2s[k-1]) / float64(theta),
		SketchSpread: skSpread,
		GrowRounds:   grew,
	}
	s.cache.put(k, eps, ModeFast, ans)
	s.noteAgreement(ans)
	s.stats.queries.Inc()
	s.stats.fastSeeds.Inc()
	if grew == 0 {
		s.stats.reuseHits.Inc()
	}
	return ans, true, nil
}

// noteAgreement samples fast/certified seed-set agreement: whenever the
// other tier's answer to the same (k, ε) on the same epoch is still
// cached, compare the seed sets (order-insensitively — the tiers rank
// differently but the set is what a client acts on). The running ratio
// is exported on /statsz and measured offline by bench -run sketch.
func (s *Service) noteAgreement(ans *Answer) {
	if s.sk == nil {
		return
	}
	other := ModeCertified
	if ans.Mode == ModeCertified {
		other = ModeFast
	}
	peer, ok := s.cache.get(ans.K, ans.Eps, other)
	if !ok || peer.Epoch != ans.Epoch {
		return
	}
	s.stats.agreeChecked.Inc()
	if sameSeedSet(ans.Seeds, peer.Seeds) {
		s.stats.agreeMatched.Inc()
	}
}

func sameSeedSet(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[uint32]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	for _, v := range b {
		if !in[v] {
			return false
		}
	}
	return true
}

// grow extends the resident sample by one doubling round (θ → 2θ, or to
// θ₀ from empty), unless another grower already moved past fromEpoch.
// Cluster generation and the incremental fetch run outside the epoch
// lock; the write lock covers only the append + index extension.
func (s *Service) grow(fromEpoch uint64) error {
	s.growMu.Lock()
	defer s.growMu.Unlock()

	s.mu.RLock()
	cur := int64(s.r1.Count())
	epoch := s.epoch
	s.mu.RUnlock()
	if epoch != fromEpoch {
		return nil // a concurrent query grew the sample; re-evaluate
	}
	if s.closed.Load() {
		return fmt.Errorf("serve: service is closed")
	}
	targetTheta := cur * 2
	if cur == 0 {
		targetTheta = s.budget.Theta0
	}
	if targetTheta > s.budget.ThetaMax {
		targetTheta = s.budget.ThetaMax
	}
	add := targetTheta - cur
	if add <= 0 {
		return fmt.Errorf("serve: resident sample already at its %d cap", s.budget.ThetaMax)
	}

	new1 := rrset.NewCollection(1 << 12)
	new2 := rrset.NewCollection(1 << 12)
	var newSpans1, newSpans2 []cluster.FetchSpan
	s.clusterMu.Lock()
	err := func() error {
		st1, err := s.c1.Generate(add)
		if err != nil {
			return fmt.Errorf("serve: growing R1: %w", err)
		}
		st2, err := s.c2.Generate(add)
		if err != nil {
			return fmt.Errorf("serve: growing R2: %w", err)
		}
		// The workers report batch counters cumulative since their start,
		// so overwrite (not add) the per-cluster last-seen values.
		s.stats.batchMu.Lock()
		s.stats.batch1 = st1.Batch
		s.stats.batch2 = st2.Batch
		s.stats.genCalls += 2
		s.stats.batchMu.Unlock()
		if s.fetched1, newSpans1, err = s.c1.FetchNewSpans(s.fetched1, new1); err != nil {
			return fmt.Errorf("serve: fetching R1 increment: %w", err)
		}
		if s.fetched2, newSpans2, err = s.c2.FetchNewSpans(s.fetched2, new2); err != nil {
			return fmt.Errorf("serve: fetching R2 increment: %w", err)
		}
		return nil
	}()
	s.clusterMu.Unlock()
	if err != nil {
		return s.degraded(err)
	}
	s.stats.generated.Add(int64(new1.Count() + new2.Count()))
	s.stats.growRounds.Inc()

	s.mu.Lock()
	err = func() error {
		from1, from2 := s.r1.Count(), s.r2.Count()
		// The fetch spans are relative to new1/new2; rebase them onto the
		// resident mirrors before appending (only a dynamic service reads
		// them, but recording is cheap and keeps one code path).
		for _, sp := range newSpans1 {
			sp.MasterStart += from1
			s.spans1 = append(s.spans1, sp)
		}
		for _, sp := range newSpans2 {
			sp.MasterStart += from2
			s.spans2 = append(s.spans2, sp)
		}
		s.r1.AppendCollection(new1)
		s.r2.AppendCollection(new2)
		if s.idx1 == nil {
			if s.idx1, err = rrset.BuildIndex(s.r1, s.n); err != nil {
				return err
			}
		} else if err = s.idx1.AppendFrom(s.r1, from1); err != nil {
			return err
		}
		if s.idx2 == nil {
			if s.idx2, err = rrset.BuildIndex(s.r2, s.n); err != nil {
				return err
			}
		} else if err = s.idx2.AppendFrom(s.r2, from2); err != nil {
			return err
		}
		s.epoch++
		s.cache.advance(s.epoch)
		return nil
	}()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.updateSketch()
	s.maybeCheckpoint()
	return nil
}

// updateSketch absorbs the RR instances appended since the last absorb
// into the fast tier's bottom-k sketches. Runs after growth with the
// epoch write lock already released: the snapshot is immutable, so
// certified readers proceed while the sketch rebuilds, and fast readers
// block only on sketchMu for the absorb itself. No-op when the tier is
// disabled or nothing was appended.
func (s *Service) updateSketch() {
	if s.sk == nil {
		return
	}
	s.mu.RLock()
	snap := s.r1.Snapshot()
	epoch := s.epoch
	s.mu.RUnlock()
	s.sketchMu.Lock()
	start := time.Now()
	added := core.BuildSketch(s.sk, snap, s.par)
	d := time.Since(start)
	s.skEpoch = epoch
	s.sketchMu.Unlock()
	if added > 0 {
		s.stats.skBuild.ObserveDuration(d)
		s.clusterMu.Lock()
		s.c1.AddSketchBuild(d)
		s.clusterMu.Unlock()
	}
}

// maybeCheckpoint appends the RR sets this growth epoch produced to the
// durable store. It runs under growMu with the epoch write lock already
// released: the collections are append-only and this grower is the only
// appender, so reading them unlocked is safe, and checkpoint I/O never
// blocks concurrent queries. A checkpoint failure is recorded in the
// counters but never fails the query that triggered the growth — the
// in-memory sample is authoritative, the store is a warm-start cache.
func (s *Service) maybeCheckpoint() {
	if s.st == nil {
		return
	}
	start := time.Now()
	n, err := s.st.Checkpoint(s.epoch, s.r1, s.r2)
	s.stats.ckptNanos.AddDuration(time.Since(start))
	if err != nil {
		s.stats.ckptErrors.Inc()
		return
	}
	if n > 0 {
		s.stats.ckptEpochs.Inc()
		s.stats.ckptBytes.Add(n)
	}
	if s.sk != nil {
		// The sketch segment is superseded, not appended: it is a pure
		// function of (params, absorbed prefix), so only the newest one
		// matters. Same failure policy as the RR checkpoint — the
		// in-memory sketch is authoritative.
		s.sketchMu.RLock()
		start = time.Now()
		nsk, err := s.st.CheckpointSketch(s.epoch, s.sk)
		s.sketchMu.RUnlock()
		s.stats.ckptNanos.AddDuration(time.Since(start))
		if err != nil {
			s.stats.ckptErrors.Inc()
			return
		}
		s.stats.ckptBytes.Add(nsk)
	}
}

// SpreadSketch estimates σ(seeds) from the bottom-k sketches alone —
// GET /v1/spread?mode=fast. It never touches the RR sample, its lock, or
// the worker clusters: the only synchronization is sketchMu (read), so
// fast spread reads proceed at full concurrency while certified queries
// select, grow, or checkpoint. Returns the estimate and the estimator's
// relative standard error ≈ 1/√(K−2).
func (s *Service) SpreadSketch(seeds []uint32) (est, relStdErr float64, err error) {
	if s.sk == nil {
		return 0, 0, badQueryf("serve: fast tier disabled (sketch-k < 0)")
	}
	if len(seeds) == 0 {
		return 0, 0, badQueryf("serve: empty seed set")
	}
	for _, u := range seeds {
		if int(u) >= s.n {
			return 0, 0, badQueryf("serve: seed %d outside the %d-node graph", u, s.n)
		}
	}
	s.sketchMu.RLock()
	defer s.sketchMu.RUnlock()
	if s.sk.Theta() == 0 {
		return 0, 0, &DegradedError{
			RetryAfter: time.Second,
			Err:        fmt.Errorf("serve: sketch tier cold: no RR instances absorbed yet (query or warm first)"),
		}
	}
	est, evals := s.sk.EstimateSpreadSet(seeds)
	s.stats.skEstimates.Add(int64(evals))
	s.stats.fastSpreads.Inc()
	return est, s.sk.RelStdErr(), nil
}

// Spread estimates σ(seeds) by forward Monte-Carlo simulation on the
// warm R1 cluster (the distributed estimation service of §II-B),
// returning the mean and its standard error.
func (s *Service) Spread(seeds []uint32, rounds int64) (mean, stderr float64, err error) {
	if len(seeds) == 0 {
		return 0, 0, badQueryf("serve: empty seed set")
	}
	if rounds < 1 || rounds > 10_000_000 {
		return 0, 0, badQueryf("serve: rounds=%d outside [1, 1e7]", rounds)
	}
	for _, u := range seeds {
		if int(u) >= s.n {
			return 0, 0, badQueryf("serve: seed %d outside the %d-node graph", u, s.n)
		}
	}
	if s.closed.Load() {
		return 0, 0, fmt.Errorf("serve: service is closed")
	}
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	mean, stderr, err = s.c1.EstimateSpread(seeds, rounds)
	return mean, stderr, s.degraded(err)
}

// Stats is a point-in-time snapshot of the service, the payload of
// GET /statsz.
type Stats struct {
	Epoch       uint64  `json:"epoch"`
	Theta       int64   `json:"theta"`
	ThetaMax    int64   `json:"theta_max"`
	TotalRRSize int64   `json:"total_rr_size"` // summed cardinality, R1 + R2
	KMax        int     `json:"k_max"`
	EpsFloor    float64 `json:"eps_floor"`

	Queries    int64 `json:"queries"`
	CacheHits  int64 `json:"cache_hits"`
	ReuseHits  int64 `json:"reuse_hits"`
	GrowRounds int64 `json:"grow_rounds"`
	Generated  int64 `json:"generated"`

	// Fast-tier figures: the sketch's configuration and progress (zero
	// K = tier disabled), build passes and their wall time, estimator
	// evaluations served, per-endpoint fast-mode query counts, and the
	// running fast/certified seed-set agreement sample.
	SketchK            int     `json:"sketch_k"`
	SketchTheta        int64   `json:"sketch_theta"`
	SketchRestored     bool    `json:"sketch_restored"`
	SketchBuilds       int64   `json:"sketch_builds"`
	SketchBuildSeconds float64 `json:"sketch_build_seconds"`
	SketchEstimates    int64   `json:"sketch_estimates"`
	FastSeedQueries    int64   `json:"fast_seed_queries"`
	FastSpreadQueries  int64   `json:"fast_spread_queries"`
	FastAgreeChecked   int64   `json:"fast_agree_checked"`
	FastAgreeMatched   int64   `json:"fast_agree_matched"`

	// Durable-store figures: what startup replayed and what the
	// checkpoint hook has written since (all zero with no CheckpointDir).
	Restored          bool    `json:"restored"`
	RestoredEpochs    int     `json:"restored_epochs"`
	RestoredTheta     int64   `json:"restored_theta"`
	CheckpointEpochs  int64   `json:"checkpoint_epochs"`
	CheckpointBytes   int64   `json:"checkpoint_bytes"`
	CheckpointErrors  int64   `json:"checkpoint_errors"`
	CheckpointSeconds float64 `json:"checkpoint_seconds"`

	// Batched-sampling figures, aggregated over both clusters' workers:
	// how effectively the frontier-batched kernel amortized adjacency
	// reads while growing the resident sample (all zero with -batch 1).
	// WavesPerGenerate is Batch.Waves over generate broadcasts;
	// FrontierOccupancy is LaneWaves/(Waves·B) — the fraction of the
	// batch still alive while waves ran.
	BatchWidth        int     `json:"batch_width"`
	BatchCohorts      int64   `json:"batch_cohorts"`
	BatchWaves        int64   `json:"batch_waves"`
	BatchItems        int64   `json:"batch_frontier_items"`
	SkippedEdges      int64   `json:"batch_skipped_edges"`
	WavesPerGenerate  float64 `json:"batch_waves_per_generate"`
	FrontierOccupancy float64 `json:"batch_frontier_occupancy"`

	// Fault-tolerance figures: per-worker liveness and retry/redial/
	// failover counters for the two clusters, and how many requests were
	// refused 503 because worker capacity was lost.
	R1Workers []cluster.WorkerHealth `json:"r1_workers"`
	R2Workers []cluster.WorkerHealth `json:"r2_workers"`
	Degraded  int64                  `json:"degraded"`

	// Dynamic-graph figures: the graph-update sequence number the
	// published sample reflects, how many update batches were applied,
	// how many resident RR sets were repaired in place, how many updates
	// fell back to a full re-mirror of the workers' samples, how many
	// fast queries were bounced to the certified tier because the sketch
	// lagged the sample epoch, and whether an interrupted update is
	// currently degrading queries (healed by retrying the same batch).
	GraphVersion uint64 `json:"graph_version"`
	Updates      int64  `json:"updates"`
	RepairedSets int64  `json:"repaired_rr_sets"`
	Remirrors    int64  `json:"remirrors"`
	SketchStale  int64  `json:"sketch_stale"`
	UpdateDebt   bool   `json:"update_debt"`

	InFlight int64                       `json:"in_flight"`
	Rejected int64                       `json:"rejected"`
	Uptime   float64                     `json:"uptime_seconds"`
	Endpoint map[string]EndpointSnapshot `json:"endpoints"`
}

// ReuseRate returns the fraction of queries served without any RR
// generation (LRU hits plus resident-sample hits).
func (st Stats) ReuseRate() float64 {
	if st.Queries == 0 {
		return 0
	}
	return float64(st.CacheHits+st.ReuseHits) / float64(st.Queries)
}

// MetricsSnapshot exports the raw metric registries behind /statsz: the
// service's own registry merged with the two clusters' registries under
// "r1." / "r2." prefixes. Cluster snapshots read only local atomics —
// no worker RPCs — so this is safe to call concurrently with queries.
func (s *Service) MetricsSnapshot() metrics.Snapshot {
	snap := s.reg.Snapshot()
	snap.Merge("r1.", s.c1.MetricsSnapshot())
	snap.Merge("r2.", s.c2.MetricsSnapshot())
	return snap
}

// Stats snapshots the counters. The sample figures are read under the
// epoch lock via immutable snapshots, so a concurrent grower is never
// blocked for longer than the two header copies.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	epoch := s.epoch
	gver := s.gver
	snap1, snap2 := s.r1.Snapshot(), s.r2.Snapshot()
	s.mu.RUnlock()
	st := Stats{
		Epoch:       epoch,
		Theta:       int64(snap1.Count()),
		ThetaMax:    s.budget.ThetaMax,
		TotalRRSize: snap1.TotalSize() + snap2.TotalSize(),
		KMax:        s.cfg.KMax,
		EpsFloor:    s.cfg.EpsFloor,
		Queries:     s.stats.queries.Value(),
		CacheHits:   s.stats.cacheHits.Value(),
		ReuseHits:   s.stats.reuseHits.Value(),
		GrowRounds:  s.stats.growRounds.Value(),
		Generated:   s.stats.generated.Value(),

		SketchRestored:     s.skRestored,
		SketchBuilds:       s.stats.skBuild.Count(),
		SketchBuildSeconds: float64(s.stats.skBuild.Sum()) / 1e9,
		SketchEstimates:    s.stats.skEstimates.Value(),
		FastSeedQueries:    s.stats.fastSeeds.Value(),
		FastSpreadQueries:  s.stats.fastSpreads.Value(),
		FastAgreeChecked:   s.stats.agreeChecked.Value(),
		FastAgreeMatched:   s.stats.agreeMatched.Value(),

		Restored:          s.restoredTheta > 0,
		RestoredEpochs:    s.restoredEpochs,
		RestoredTheta:     s.restoredTheta,
		CheckpointEpochs:  s.stats.ckptEpochs.Value(),
		CheckpointBytes:   s.stats.ckptBytes.Value(),
		CheckpointErrors:  s.stats.ckptErrors.Value(),
		CheckpointSeconds: float64(s.stats.ckptNanos.Value()) / 1e9,

		// Cluster health has its own lock, so snapshotting it never waits
		// on an in-flight grow round's RPCs.
		R1Workers: s.c1.Health(),
		R2Workers: s.c2.Health(),
		Degraded:  s.stats.degraded.Value(),

		GraphVersion: gver,
		Updates:      s.stats.updates.Value(),
		RepairedSets: s.stats.repairedSets.Value(),
		Remirrors:    s.stats.remirrors.Value(),
		SketchStale:  s.stats.skStale.Value(),
		UpdateDebt:   s.updateDebt.Load(),

		InFlight: int64(len(s.sem)),
		Rejected: s.http.rejected.Value(),
		Uptime:   time.Since(s.http.started).Seconds(),
		Endpoint: s.http.snapshot(),
	}
	if s.sk != nil {
		s.sketchMu.RLock()
		st.SketchK = s.sk.K()
		st.SketchTheta = s.sk.Theta()
		s.sketchMu.RUnlock()
	}
	s.stats.batchMu.Lock()
	batch := s.stats.batch1
	batch.Add(s.stats.batch2)
	genCalls := s.stats.genCalls
	s.stats.batchMu.Unlock()
	st.BatchWidth = s.batch
	st.BatchCohorts = batch.Cohorts
	st.BatchWaves = batch.Waves
	st.BatchItems = batch.FrontierItems
	st.SkippedEdges = batch.SkippedEdges
	if genCalls > 0 {
		st.WavesPerGenerate = float64(batch.Waves) / float64(genCalls)
	}
	if batch.Waves > 0 && s.batch > 0 {
		st.FrontierOccupancy = float64(batch.LaneWaves) / (float64(batch.Waves) * float64(s.batch))
	}
	return st
}
