package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"dimm/internal/diffusion"
	"dimm/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferential(graph.GenConfig{Nodes: 300, AvgDegree: 6, Seed: 17, UniformAttach: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return wc
}

func testService(t testing.TB, cfg Config) *Service {
	t.Helper()
	if cfg.Graph == nil {
		cfg.Graph = testGraph(t)
	}
	cfg.Model = diffusion.IC
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.KMax == 0 {
		cfg.KMax = 10
	}
	if cfg.EpsFloor == 0 {
		cfg.EpsFloor = 0.3
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestQueryReuse is the acceptance scenario: a second query with a
// smaller k must be served entirely from the resident sample (zero new
// RR generation, observable via the Generated counter) and must equal
// the answer a cold service computes at the same epoch.
func TestQueryReuse(t *testing.T) {
	g := testGraph(t)
	warm := testService(t, Config{Graph: g, Machines: 2})

	a1, err := warm.Query(10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	genAfterFirst := warm.Stats().Generated
	if genAfterFirst == 0 {
		t.Fatal("first query generated no RR sets")
	}

	a2, err := warm.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Generated != genAfterFirst {
		t.Fatalf("second query generated %d new RR sets, want 0 (reuse)",
			st.Generated-genAfterFirst)
	}
	if a2.Cached || a2.GrowRounds != 0 {
		t.Fatalf("second query: cached=%v growRounds=%d, want fresh reuse", a2.Cached, a2.GrowRounds)
	}
	if st.ReuseHits != 1 {
		t.Fatalf("reuse hits = %d, want 1", st.ReuseHits)
	}
	if a2.Epoch != a1.Epoch {
		t.Fatalf("reusing query moved the epoch %d -> %d", a1.Epoch, a2.Epoch)
	}

	// Greedy prefix consistency: the k=5 answer is the first 5 of the k=10
	// answer, selected over the same deterministic collection.
	for i, u := range a2.Seeds {
		if a1.Seeds[i] != u {
			t.Fatalf("seed %d: reuse answer %d != prefix of k=10 answer %d", i, u, a1.Seeds[i])
		}
	}

	// Cold-run equivalence: a fresh service with the same config, driven
	// through the same growth history, answers k=5 identically.
	cold := testService(t, Config{Graph: g, Machines: 2})
	for cold.Stats().Epoch < a2.Epoch {
		if err := cold.grow(cold.Stats().Epoch); err != nil {
			t.Fatal(err)
		}
	}
	a3, err := cold.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if a3.Epoch != a2.Epoch || a3.Theta != a2.Theta {
		t.Fatalf("cold run reached (epoch %d, theta %d), warm at (%d, %d)",
			a3.Epoch, a3.Theta, a2.Epoch, a2.Theta)
	}
	if fmt.Sprint(a3.Seeds) != fmt.Sprint(a2.Seeds) {
		t.Fatalf("cold-run seeds %v != warm reuse seeds %v", a3.Seeds, a2.Seeds)
	}
	if a3.Ratio != a2.Ratio {
		t.Fatalf("cold-run certificate %v != warm certificate %v", a3.Ratio, a2.Ratio)
	}
}

// TestQueryCertificate: every answer's certificate must reach the
// guarantee the query asked for (the service keeps growing until it
// does, and ThetaMax is sized so that the cap also suffices whp).
func TestQueryCertificate(t *testing.T) {
	s := testService(t, Config{})
	for _, k := range []int{1, 3, 10} {
		ans, err := s.Query(k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - 1/math.E - 0.3
		if ans.Ratio < want && ans.Theta < s.budget.ThetaMax {
			t.Fatalf("k=%d certified ratio %.4f < %.4f with theta %d below the cap",
				k, ans.Ratio, want, ans.Theta)
		}
		if ans.SpreadLower <= 0 || ans.OptUpper < ans.SpreadLower {
			t.Fatalf("k=%d degenerate certificate: lower %v upper %v", k, ans.SpreadLower, ans.OptUpper)
		}
		if len(ans.Seeds) != k {
			t.Fatalf("k=%d returned %d seeds", k, len(ans.Seeds))
		}
	}
}

// TestQueryValidation: out-of-range queries are typed client errors.
func TestQueryValidation(t *testing.T) {
	s := testService(t, Config{})
	cases := []struct {
		k   int
		eps float64
	}{{0, 0.3}, {11, 0.3}, {5, 0.1}, {5, 1.0}}
	for _, c := range cases {
		_, err := s.Query(c.k, c.eps)
		var bad *BadQueryError
		if err == nil || !errors.As(err, &bad) {
			t.Fatalf("Query(%d, %v) = %v, want *BadQueryError", c.k, c.eps, err)
		}
	}
}

// TestQueryCache: repeating a query hits the LRU; growth invalidates it.
func TestQueryCache(t *testing.T) {
	s := testService(t, Config{})
	a1, err := s.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Cached {
		t.Fatal("first query served from an empty cache")
	}
	a2, err := s.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Cached {
		t.Fatal("repeat query missed the cache")
	}
	if fmt.Sprint(a2.Seeds) != fmt.Sprint(a1.Seeds) {
		t.Fatal("cached answer differs from the original")
	}
	if got := s.Stats().CacheHits; got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}

	// Growth bumps the epoch; the stale entry must not be served.
	if err := s.grow(a1.Epoch); err != nil {
		t.Fatal(err)
	}
	a3, err := s.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if a3.Cached {
		t.Fatal("served a pre-growth cached answer after the epoch moved")
	}
	if a3.Epoch == a1.Epoch {
		t.Fatalf("epoch did not move across growth")
	}
}

// TestConcurrentQueriesDeterministic hammers the service with mixed k
// from many goroutines while growth races underneath (run with -race).
// Every answer must carry a certificate meeting its ε, and answers for
// the same (k, ε, epoch) must be identical across goroutines.
func TestConcurrentQueriesDeterministic(t *testing.T) {
	s := testService(t, Config{Machines: 2, CacheSize: -1}) // no LRU: every answer recomputed

	const goroutines = 8
	const perG = 6
	type obs struct {
		k     int
		epoch uint64
		seeds string
		ratio float64
	}
	results := make(chan obs, goroutines*perG)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for q := 0; q < perG; q++ {
				k := 1 + (gi+q)%10
				ans, err := s.Query(k, 0.3)
				if err != nil {
					t.Errorf("Query(%d): %v", k, err)
					return
				}
				results <- obs{k: k, epoch: ans.Epoch, seeds: fmt.Sprint(ans.Seeds), ratio: ans.Ratio}
			}
		}(gi)
	}
	wg.Wait()
	close(results)

	target := 1 - 1/math.E - 0.3
	byKey := map[string]obs{}
	for o := range results {
		if o.ratio < target {
			// Only acceptable once the sample has hit its growth cap.
			if st := s.Stats(); st.Theta < st.ThetaMax {
				t.Fatalf("k=%d epoch=%d ratio %.4f below target %.4f pre-cap", o.k, o.epoch, o.ratio, target)
			}
		}
		key := fmt.Sprintf("%d@%d", o.k, o.epoch)
		if prev, ok := byKey[key]; ok {
			if prev.seeds != o.seeds {
				t.Fatalf("nondeterministic answer for %s:\n  %s\n  %s", key, prev.seeds, o.seeds)
			}
		} else {
			byKey[key] = o
		}
	}
}

// TestSpread: the forward-simulation endpoint returns a sane estimate.
func TestSpread(t *testing.T) {
	s := testService(t, Config{})
	ans, err := s.Query(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	mean, stderr, err := s.Spread(ans.Seeds, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 5 || mean > 300 {
		t.Fatalf("simulated spread %v outside [k, n]", mean)
	}
	if stderr <= 0 {
		t.Fatalf("stderr %v", stderr)
	}
	// The certified lower bound must not exceed simulation by a wide
	// margin (it holds whp; allow generous slack for MC noise).
	if ans.SpreadLower > mean+10*stderr+5 {
		t.Fatalf("certified lower bound %v far above simulated spread %v±%v",
			ans.SpreadLower, mean, stderr)
	}

	if _, _, err := s.Spread(nil, 100); err == nil {
		t.Fatal("empty seed set accepted")
	}
	if _, _, err := s.Spread([]uint32{999}, 100); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

func TestAnswerCacheLRU(t *testing.T) {
	c := newAnswerCache(2)
	mk := func(k int) *Answer { return &Answer{K: k} }
	c.put(1, 0.3, ModeCertified, mk(1))
	c.put(2, 0.3, ModeCertified, mk(2))
	c.put(3, 0.3, ModeCertified, mk(3)) // evicts k=1
	if _, ok := c.get(1, 0.3, ModeCertified); ok {
		t.Fatal("k=1 survived past capacity")
	}
	if _, ok := c.get(2, 0.3, ModeCertified); !ok {
		t.Fatal("k=2 evicted early")
	}
	c.put(4, 0.3, ModeCertified, mk(4)) // k=3 is now LRU, evicted
	if _, ok := c.get(3, 0.3, ModeCertified); ok {
		t.Fatal("k=3 survived past capacity")
	}
	// Epoch bump invalidates everything.
	c.put(5, 0.3, ModeCertified, &Answer{K: 5, Epoch: 1})
	if _, ok := c.get(2, 0.3, ModeCertified); ok {
		t.Fatal("stale-epoch entry served")
	}
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries after epoch flush, want 1", c.len())
	}
	// Older-epoch answers arriving late are dropped.
	c.put(6, 0.3, ModeCertified, &Answer{K: 6, Epoch: 0})
	if _, ok := c.get(6, 0.3, ModeCertified); ok {
		t.Fatal("pre-growth answer cached after the epoch moved")
	}
}
