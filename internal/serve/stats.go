package serve

import (
	"sort"
	"sync"
	"time"

	"dimm/internal/metrics"
)

// latencyRing keeps the most recent request latencies per endpoint so
// /statsz can report p50/p99 without unbounded memory. 1024 samples give
// a p99 resolved from the worst ~10 recent requests — coarse but honest
// for an in-process counter, and allocation-free at record time.
const latencyRingSize = 1024

// endpointStats aggregates one endpoint's request accounting. Count,
// errors and the latency distribution live in the metric registry
// ("http.<name>.*"); the ring is the one piece the registry cannot
// carry — a recency window for the p50/p99 the /statsz payload reports.
type endpointStats struct {
	count  *metrics.Counter
	errors *metrics.Counter
	lat    *metrics.Univariate // all-time latency distribution, ns

	mu      sync.Mutex
	ring    [latencyRingSize]time.Duration
	ringLen int
	ringPos int
}

func (e *endpointStats) record(d time.Duration, isErr bool) {
	e.count.Inc()
	if isErr {
		e.errors.Inc()
	}
	e.lat.ObserveDuration(d)
	e.mu.Lock()
	e.ring[e.ringPos] = d
	e.ringPos = (e.ringPos + 1) % latencyRingSize
	if e.ringLen < latencyRingSize {
		e.ringLen++
	}
	e.mu.Unlock()
}

// EndpointSnapshot is one endpoint's row in the /statsz payload.
type EndpointSnapshot struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50Ms  float64 `json:"p50_ms"` // over the most recent window
	P99Ms  float64 `json:"p99_ms"`
}

func (e *endpointStats) snapshot() EndpointSnapshot {
	snap := EndpointSnapshot{Count: e.count.Value(), Errors: e.errors.Value()}
	e.mu.Lock()
	lat := make([]time.Duration, e.ringLen)
	copy(lat, e.ring[:e.ringLen])
	e.mu.Unlock()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		snap.P50Ms = float64(lat[quantileIdx(len(lat), 0.50)]) / 1e6
		snap.P99Ms = float64(lat[quantileIdx(len(lat), 0.99)]) / 1e6
	}
	return snap
}

// quantileIdx is the nearest-rank index for quantile q over n sorted
// samples.
func quantileIdx(n int, q float64) int {
	i := int(q*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// httpCounters is the HTTP layer's accounting: per-endpoint latency and
// error counts plus admission-control rejections, registry-backed.
type httpCounters struct {
	started  time.Time
	reg      *metrics.Registry
	rejected *metrics.Counter
	mu       sync.Mutex
	byName   map[string]*endpointStats
}

func (h *httpCounters) init(reg *metrics.Registry) {
	h.started = time.Now()
	h.reg = reg
	h.rejected = reg.Counter("http.rejected")
}

func (h *httpCounters) endpoint(name string) *endpointStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.byName == nil {
		h.byName = make(map[string]*endpointStats)
	}
	e, ok := h.byName[name]
	if !ok {
		e = &endpointStats{
			count:  h.reg.Counter("http." + name + ".count"),
			errors: h.reg.Counter("http." + name + ".errors"),
			lat:    h.reg.Univariate("http." + name + ".latency_ns"),
		}
		h.byName[name] = e
	}
	return e
}

func (h *httpCounters) snapshot() map[string]EndpointSnapshot {
	h.mu.Lock()
	names := make([]string, 0, len(h.byName))
	stats := make([]*endpointStats, 0, len(h.byName))
	for name, e := range h.byName {
		names = append(names, name)
		stats = append(stats, e)
	}
	h.mu.Unlock()
	out := make(map[string]EndpointSnapshot, len(names))
	for i, name := range names {
		out[name] = stats[i].snapshot()
	}
	return out
}
