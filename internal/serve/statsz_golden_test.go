package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"sort"
	"testing"

	"dimm/internal/metrics"
)

// statszFields is the golden list of top-level /statsz JSON fields.
// The payload is a wire contract — dashboards and the bench harness
// parse it by name — so migrating the counters onto the metric registry
// must not rename, drop, or add fields. Deliberate schema changes must
// update this list in the same commit.
var statszFields = []string{
	"epoch", "theta", "theta_max", "total_rr_size", "k_max", "eps_floor",
	"queries", "cache_hits", "reuse_hits", "grow_rounds", "generated",
	"sketch_k", "sketch_theta", "sketch_restored", "sketch_builds",
	"sketch_build_seconds", "sketch_estimates", "fast_seed_queries",
	"fast_spread_queries", "fast_agree_checked", "fast_agree_matched",
	"restored", "restored_epochs", "restored_theta",
	"checkpoint_epochs", "checkpoint_bytes", "checkpoint_errors", "checkpoint_seconds",
	"batch_width", "batch_cohorts", "batch_waves", "batch_frontier_items",
	"batch_skipped_edges", "batch_waves_per_generate", "batch_frontier_occupancy",
	"r1_workers", "r2_workers", "degraded",
	"graph_version", "updates", "repaired_rr_sets", "remirrors",
	"sketch_stale", "update_debt",
	"in_flight", "rejected", "uptime_seconds", "endpoints",
}

// endpointFields is the golden list for each row of "endpoints".
var endpointFields = []string{"count", "errors", "p50_ms", "p99_ms"}

// TestStatszGoldenFields serves a live /statsz and asserts the payload
// carries exactly the pinned field set — no more, no fewer.
func TestStatszGoldenFields(t *testing.T) {
	_, ts := testServer(t, Config{})
	if _, code := postSeeds(t, ts.URL, 3, 0.3); code != http.StatusOK {
		t.Fatalf("POST /v1/seeds -> %d", code)
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /statsz -> %d", resp.StatusCode)
	}
	var payload map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}

	got := make([]string, 0, len(payload))
	for k := range payload {
		got = append(got, k)
	}
	want := append([]string(nil), statszFields...)
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("/statsz fields changed:\n got  %v\n want %v", got, want)
	}

	// Every endpoint row must keep its shape too.
	var eps map[string]map[string]json.RawMessage
	if err := json.Unmarshal(payload["endpoints"], &eps); err != nil {
		t.Fatalf("endpoints: %v", err)
	}
	row, ok := eps["seeds"]
	if !ok {
		t.Fatalf("endpoints missing the seeds row after a served query: %v", eps)
	}
	gotRow := make([]string, 0, len(row))
	for k := range row {
		gotRow = append(gotRow, k)
	}
	wantRow := append([]string(nil), endpointFields...)
	sort.Strings(gotRow)
	sort.Strings(wantRow)
	if !reflect.DeepEqual(gotRow, wantRow) {
		t.Errorf("endpoint row fields changed:\n got  %v\n want %v", gotRow, wantRow)
	}
}

// TestMetricszSnapshot exercises the raw registry export: the payload
// must parse back as a metrics.Snapshot and carry the service counters
// plus both clusters' metrics under their r1./r2. prefixes.
func TestMetricszSnapshot(t *testing.T) {
	_, ts := testServer(t, Config{})
	if _, code := postSeeds(t, ts.URL, 3, 0.3); code != http.StatusOK {
		t.Fatalf("POST /v1/seeds -> %d", code)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{
		"svc.queries", "svc.generated",
		"http.seeds.count", "http.seeds.latency_ns",
		"r1.cluster.rounds", "r2.cluster.rounds",
		"r1.cluster.gen.critical_ns", "r2.cluster.bytes_sent",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("/metricsz missing %q", name)
		}
	}
	if got := snap["svc.queries"].Sum; got < 1 {
		t.Errorf("svc.queries = %d after a served query, want >= 1", got)
	}
	if snap["http.seeds.latency_ns"].Kind != metrics.KindUnivariate {
		t.Errorf("http.seeds.latency_ns kind = %q, want %q",
			snap["http.seeds.latency_ns"].Kind, metrics.KindUnivariate)
	}
}
