package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/core"
	"dimm/internal/graph"
	"dimm/internal/mutate"
	"dimm/internal/rrset"
	"dimm/internal/sketch"
)

// UpdateResult is one applied (or replayed) graph-update batch, the
// payload of POST /v1/update.
type UpdateResult struct {
	// Applied is false when the batch's sequence number was already
	// applied: the replay is acknowledged without re-executing, so a
	// client that lost an ACK can safely resend.
	Applied bool `json:"applied"`
	// Seq is the batch's sequence number (assigned when the request left
	// it zero) and GraphVersion the graph's version after the call; they
	// are equal whenever the batch applied.
	Seq          uint64 `json:"seq"`
	GraphVersion uint64 `json:"graph_version"`
	Ops          int    `json:"ops"`
	// Repaired counts the resident RR sets regenerated in place across
	// both mirrors; Remirrored reports the fallback where the mirrors
	// were refetched wholesale instead (a cluster rebalanced mid-update,
	// or a prior interrupted update left the mirror unsplicable).
	Repaired   int  `json:"repaired_rr_sets"`
	Remirrored bool `json:"remirrored"`
	// Theta and Epoch describe the published sample after the update:
	// Theta is unchanged by design (repair replaces sets one-for-one),
	// Epoch advances so caches and sketches tied to the pre-update
	// sample are invalidated.
	Theta int64  `json:"theta"`
	Epoch uint64 `json:"epoch"`
}

// Update applies a batch of edge mutations to the graph and repairs the
// resident RR sample in place (see internal/mutate and DESIGN.md): the
// clusters re-run exactly the lanes whose RR sets a mutated edge could
// have touched, the returned patches are spliced into the resident
// mirrors through the fetch-span translation table, and the epoch
// advances so every cache and sketch keyed to the old sample drops.
//
// Sequencing: seq must be Version()+1; zero asks the service to assign
// the next number. A batch at or below the current version is an
// idempotent replay — acknowledged, not re-executed — so clients retry
// the same batch after a lost ACK or a 503. If a previous update was
// interrupted after the graph advanced (updateDebt), the retry heals by
// refetching the mirrors wholesale.
//
// Update serializes with growth on growMu; queries keep being answered
// from the previous epoch until the single write-locked splice.
func (s *Service) Update(seq uint64, ops []graph.EdgeUpdate) (*UpdateResult, error) {
	if !s.cfg.Dynamic {
		return nil, badQueryf("serve: this service is static; start it with dynamic graphs enabled to accept updates")
	}
	if s.closed.Load() {
		return nil, fmt.Errorf("serve: service is closed")
	}
	if len(ops) == 0 {
		return nil, badQueryf("serve: empty update batch")
	}

	s.growMu.Lock()
	defer s.growMu.Unlock()

	g := s.cfg.Graph
	v := g.Version()
	if seq == 0 {
		seq = v + 1
	}
	debt := s.updateDebt.Load()
	switch {
	case seq == v+1:
		// The next batch in sequence: validate before anything mutates.
		if err := mutate.Validate(g, s.cfg.Model, mutate.Batch{Seq: seq, Ops: ops}); err != nil {
			return nil, badQueryf("serve: %v", err)
		}
	case seq <= v && !(debt && seq == v):
		// Already applied (and not the interrupted batch a retry must
		// heal): acknowledge the replay without touching anything.
		res := &UpdateResult{Applied: false, Seq: seq, GraphVersion: v, Ops: len(ops)}
		s.mu.RLock()
		res.Theta = int64(s.r1.Count())
		res.Epoch = s.epoch
		s.mu.RUnlock()
		return res, nil
	case seq == v && debt:
		// Retrying the interrupted batch: the master graph already
		// advanced, so skip validation (the ops are in the graph) and
		// re-broadcast — worker applies are idempotent no-ops where
		// already applied, and the mirror is healed below.
	default:
		return nil, badQueryf("serve: update seq %d out of order (graph is at version %d; next is %d)", seq, v, v+1)
	}
	batch := mutate.Batch{Seq: seq, Ops: ops}

	// Master-first apply, inside clusterMu: in-process workers share this
	// graph instance, so by the time their RPC handlers run, ApplyUpdates
	// sees an already-applied seq and no-ops with the memoized deltas —
	// the concurrent-apply race never happens. TCP workers hold their own
	// copies and apply for real.
	var p1, p2 [][]rrset.Patch
	s.clusterMu.Lock()
	err := func() error {
		if seq == v+1 {
			if _, _, err := g.ApplyUpdates(seq, ops); err != nil {
				return &BadQueryError{msg: fmt.Sprintf("serve: %v", err)}
			}
		}
		var err error
		if p1, err = s.c1.Update(batch); err != nil {
			return fmt.Errorf("serve: updating R1: %w", err)
		}
		if p2, err = s.c2.Update(batch); err != nil {
			return fmt.Errorf("serve: updating R2: %w", err)
		}
		return nil
	}()
	s.clusterMu.Unlock()

	var badQuery *BadQueryError
	if errors.As(err, &badQuery) {
		// The graph rejected the batch before mutating: nothing applied
		// anywhere, no debt.
		return nil, err
	}
	rebalanced := false
	if err != nil {
		var reb *cluster.RebalancedError
		if !errors.As(err, &reb) {
			// The graph advanced but a cluster did not finish its repair:
			// refuse queries until a retried update (same seq) heals.
			s.updateDebt.Store(true)
			return nil, s.degraded(err)
		}
		// A worker was quarantined mid-update and the cluster rebalanced
		// around it: its sample is whole and repaired, but the patch/span
		// bookkeeping no longer matches the mirror. Fall through to a
		// full re-mirror.
		rebalanced = true
	}

	repaired := 0
	for _, wp := range p1 {
		repaired += len(wp)
	}
	for _, wp := range p2 {
		repaired += len(wp)
	}

	remirrored := rebalanced || debt
	if !remirrored {
		if err := s.splicePatches(p1, p2); err != nil {
			// Splicing is best-effort: any mismatch between the spans and
			// the patches (should not happen) degrades to a re-mirror
			// rather than serving a half-patched sample.
			remirrored = true
		}
	}
	if remirrored {
		if err := s.remirror(); err != nil {
			s.updateDebt.Store(true)
			return nil, s.degraded(err)
		}
	}
	s.updateDebt.Store(false)
	s.stats.updates.Inc()
	s.stats.repairedSets.Add(int64(repaired))
	s.rebuildSketch()
	s.maybeCheckpointDelta(batch, repaired, remirrored)

	res := &UpdateResult{
		Applied:      true,
		Seq:          seq,
		GraphVersion: g.Version(),
		Ops:          len(ops),
		Repaired:     repaired,
		Remirrored:   remirrored,
	}
	s.mu.RLock()
	res.Theta = int64(s.r1.Count())
	res.Epoch = s.epoch
	s.mu.RUnlock()
	return res, nil
}

// splicePatches maps the per-worker repair patches onto resident-mirror
// positions through the fetch-span tables and applies them under the
// epoch write lock, republishing the sample at a new epoch. The indexes
// are patched in place (tombstone + overlay, see rrset.ApplyPatches on
// Index) rather than rebuilt — the O(changed) maintenance the repair
// path's latency budget lives on; any patch error degrades to a
// re-mirror via the caller.
func (s *Service) splicePatches(p1, p2 [][]rrset.Patch) error {
	pat1, err := mapWorkerPatches(s.spans1, p1)
	if err != nil {
		return fmt.Errorf("serve: splicing R1 patches: %w", err)
	}
	pat2, err := mapWorkerPatches(s.spans2, p2)
	if err != nil {
		return fmt.Errorf("serve: splicing R2 patches: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Index patches diff against pre-patch membership, so they run
	// before the collections mutate; a nil index (never queried yet)
	// stays nil and is built on demand.
	if s.idx1 != nil {
		if err := s.idx1.ApplyPatches(s.r1, pat1); err != nil {
			return err
		}
	}
	if s.idx2 != nil {
		if err := s.idx2.ApplyPatches(s.r2, pat2); err != nil {
			return err
		}
	}
	if err := s.r1.ApplyPatches(pat1); err != nil {
		return err
	}
	if err := s.r2.ApplyPatches(pat2); err != nil {
		return err
	}
	s.gver = s.cfg.Graph.Version()
	s.epoch++
	s.cache.advance(s.epoch)
	return nil
}

// mapWorkerPatches rebases worker-local patch positions onto the
// resident mirror through the recorded fetch spans. Every resident set
// was fetched through exactly one span, so the translation is total;
// a patch position outside every span means the mirror and the workers
// have diverged (the caller falls back to a re-mirror).
func mapWorkerPatches(spans []cluster.FetchSpan, patches [][]rrset.Patch) ([]rrset.Patch, error) {
	byWorker := make(map[int][]cluster.FetchSpan)
	for _, sp := range spans {
		byWorker[sp.Worker] = append(byWorker[sp.Worker], sp)
	}
	var out []rrset.Patch
	for w, wp := range patches {
		ws := byWorker[w]
		// Spans are recorded in fetch order, which is worker-position
		// order for any single worker.
		sort.Slice(ws, func(i, j int) bool { return ws[i].WorkerStart < ws[j].WorkerStart })
		for _, p := range wp {
			i := sort.Search(len(ws), func(i int) bool { return ws[i].WorkerStart+ws[i].Count > p.Pos })
			if i == len(ws) || p.Pos < ws[i].WorkerStart {
				return nil, fmt.Errorf("worker %d patch at %d outside every fetched span", w, p.Pos)
			}
			out = append(out, rrset.Patch{
				Pos:     ws[i].MasterStart + (p.Pos - ws[i].WorkerStart),
				Members: p.Members,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// remirror refetches both clusters' full samples into fresh mirrors —
// the recovery path when per-set splicing is impossible (a cluster
// rebalanced mid-update, or a previous update was interrupted). Runs
// under growMu; the swap itself holds the epoch write lock only for the
// pointer replacement and reindex.
func (s *Service) remirror() error {
	fresh1 := rrset.NewCollection(1 << 16)
	fresh2 := rrset.NewCollection(1 << 16)
	var next1, next2 []int
	var spans1, spans2 []cluster.FetchSpan
	s.clusterMu.Lock()
	err := func() (err error) {
		if next1, spans1, err = s.c1.FetchNewSpans(nil, fresh1); err != nil {
			return fmt.Errorf("serve: re-mirroring R1: %w", err)
		}
		if next2, spans2, err = s.c2.FetchNewSpans(nil, fresh2); err != nil {
			return fmt.Errorf("serve: re-mirroring R2: %w", err)
		}
		return nil
	}()
	s.clusterMu.Unlock()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r1, s.r2 = fresh1, fresh2
	s.idx1, s.idx2 = nil, nil
	if fresh1.Count() > 0 {
		if s.idx1, err = rrset.BuildIndex(fresh1, s.n); err != nil {
			return err
		}
		if s.idx2, err = rrset.BuildIndex(fresh2, s.n); err != nil {
			return err
		}
	}
	s.fetched1, s.fetched2 = next1, next2
	// Fresh mirrors start at position 0, so the new spans' MasterStart
	// values are already absolute.
	s.spans1, s.spans2 = spans1, spans2
	s.gver = s.cfg.Graph.Version()
	s.epoch++
	s.cache.advance(s.epoch)
	s.stats.remirrors.Inc()
	return nil
}

// maybeCheckpointDelta records an applied update batch in the durable
// store as a graph-delta segment (see internal/store), keeping the
// on-disk history honest: the RR segments written before this update
// predate the in-place repairs, so the deltas both document what
// happened and mark the store unrestorable. Like maybeCheckpoint, a
// store failure is counted but never fails the update — the in-memory
// state is authoritative.
func (s *Service) maybeCheckpointDelta(b mutate.Batch, repaired int, remirrored bool) {
	if s.st == nil {
		return
	}
	s.mu.RLock()
	epoch := s.epoch
	s.mu.RUnlock()
	start := time.Now()
	bytes, err := s.st.AppendDelta(epoch, b, repaired, remirrored)
	s.stats.ckptNanos.AddDuration(time.Since(start))
	if err != nil {
		s.stats.ckptErrors.Inc()
		return
	}
	s.stats.ckptBytes.Add(bytes)
}

// rebuildSketch replaces the fast tier's sketch set wholesale after a
// repair. The incremental absorb in updateSketch only ever appends the
// sample's new suffix; a repair rewrites sets in the absorbed prefix,
// which the bottom-k structure cannot un-absorb, so the repaired sample
// gets a fresh build with the same parameters. No-op when the tier is
// disabled.
func (s *Service) rebuildSketch() {
	if s.sk == nil {
		return
	}
	s.mu.RLock()
	snap := s.r1.Snapshot()
	epoch := s.epoch
	s.mu.RUnlock()
	fresh, err := sketch.New(s.n, sketch.Params{K: s.sk.K(), Seed: s.sk.Seed()})
	if err != nil {
		return // unreachable: the same params built the current sketch
	}
	start := time.Now()
	core.BuildSketch(fresh, snap, s.par)
	d := time.Since(start)
	s.sketchMu.Lock()
	s.sk = fresh
	s.skEpoch = epoch
	s.sketchMu.Unlock()
	s.stats.skBuild.ObserveDuration(d)
}
