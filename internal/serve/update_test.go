package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dimm/internal/cluster"
	"dimm/internal/diffusion"
	"dimm/internal/graph"
	"dimm/internal/rrset"
	"dimm/internal/store"
	"dimm/internal/xrand"
)

// dynGraph builds a fresh, mutation-enabled copy of the deterministic
// test graph (twin calls yield identical content).
func dynGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := testGraph(t)
	g.EnableMutation()
	return g
}

// dynOps derives a deterministic update batch from the graph content:
// removals of existing edges, high-probability additions of absent ones
// (so the IC refined repair plan is exercised), and one reweight.
func dynOps(t testing.TB, g *graph.Graph) []graph.EdgeUpdate {
	t.Helper()
	var ops []graph.EdgeUpdate
	seen := make(map[[2]uint32]bool)
	for v := uint32(0); v < uint32(g.NumNodes()) && len(ops) < 8; v++ {
		adj, probs := g.InNeighbors(v)
		for i, u := range adj {
			if probs[i] > 0 && !seen[[2]uint32{u, v}] {
				seen[[2]uint32{u, v}] = true
				ops = append(ops, graph.EdgeUpdate{Op: graph.OpRemove, From: u, To: v})
				break
			}
		}
	}
	if len(ops) < 8 {
		t.Fatalf("test graph too sparse: only %d removable edges found", len(ops))
	}
	r := xrand.New(0xD15EA5E + g.Version())
	n := uint32(g.NumNodes())
	for added := 0; added < 5; {
		u, v := r.Uint32n(n), r.Uint32n(n)
		if u == v || seen[[2]uint32{u, v}] {
			continue
		}
		if hasLiveEdge(g, u, v) {
			continue
		}
		seen[[2]uint32{u, v}] = true
		ops = append(ops, graph.EdgeUpdate{Op: graph.OpAdd, From: u, To: v, Prob: 0.9})
		added++
	}
	for v := uint32(0); v < n; v++ {
		adj, probs := g.InNeighbors(v)
		for i, u := range adj {
			if probs[i] > 0 && !seen[[2]uint32{u, v}] {
				return append(ops, graph.EdgeUpdate{Op: graph.OpReweight, From: u, To: v, Prob: probs[i] / 2})
			}
		}
	}
	t.Fatal("no edge left to reweight")
	return nil
}

func hasLiveEdge(g *graph.Graph, u, v uint32) bool {
	adj, probs := g.InNeighbors(v)
	for i, w := range adj {
		if w == u && probs[i] > 0 {
			return true
		}
	}
	for _, e := range g.InOverlay(v) {
		if e.Node == u && e.Prob > 0 {
			return true
		}
	}
	return false
}

func wireBytes(c *rrset.Collection) []byte { return c.AppendWireRange(nil, 0) }

// TestDynamicUpdateRepairsSample is the tentpole acceptance path at the
// service layer: a warm dynamic service absorbs an edge-update batch,
// repairs the resident mirrors in place (no remirror, theta unchanged),
// and the next query carries a valid certificate computed on the
// repaired sample. With a single worker per cluster, the incremental
// mirror must afterwards be byte-identical to a full refetch of the
// workers' (repaired) state — the splice dropped and replaced exactly
// the right sets.
func TestDynamicUpdateRepairsSample(t *testing.T) {
	g := dynGraph(t)
	s := testService(t, Config{Graph: g, Dynamic: true, SketchK: -1})

	// Two queries at different tightness force multiple growth epochs,
	// so the fetch-span table spans several rounds.
	if _, err := s.Query(10, 0.5); err != nil {
		t.Fatal(err)
	}
	a0, err := s.Query(10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if a0.GraphVersion != 0 {
		t.Fatalf("pre-update answer carries graph version %d, want 0", a0.GraphVersion)
	}

	res, err := s.Update(0, dynOps(t, g))
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case !res.Applied:
		t.Fatal("update not applied")
	case res.Seq != 1 || res.GraphVersion != 1:
		t.Fatalf("update got seq %d / version %d, want 1 / 1", res.Seq, res.GraphVersion)
	case res.Repaired == 0:
		t.Fatal("update repaired zero RR sets; the batch should touch the resident sample")
	case res.Remirrored:
		t.Fatal("healthy update fell back to a full re-mirror")
	case res.Theta != a0.Theta:
		t.Fatalf("repair changed theta %d → %d; repair must replace sets one-for-one", a0.Theta, res.Theta)
	case res.Epoch <= a0.Epoch:
		t.Fatalf("update did not advance the epoch (%d after %d)", res.Epoch, a0.Epoch)
	}

	a1, err := s.Query(10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if a1.GraphVersion != 1 {
		t.Fatalf("post-update answer carries graph version %d, want 1", a1.GraphVersion)
	}
	if target := 1 - 1/math.E - 0.3; a1.Ratio < target {
		t.Fatalf("post-update certificate ratio %v below target %v", a1.Ratio, target)
	}

	// Single worker per cluster means incremental fetch order equals full
	// fetch order, so the spliced mirrors must match a wholesale refetch
	// byte for byte.
	fresh1 := rrset.NewCollection(0)
	fresh2 := rrset.NewCollection(0)
	s.clusterMu.Lock()
	if _, _, err := s.c1.FetchNewSpans(nil, fresh1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.c2.FetchNewSpans(nil, fresh2); err != nil {
		t.Fatal(err)
	}
	s.clusterMu.Unlock()
	s.mu.RLock()
	m1, m2 := wireBytes(s.r1), wireBytes(s.r2)
	s.mu.RUnlock()
	if !bytes.Equal(m1, wireBytes(fresh1)) {
		t.Fatal("spliced R1 mirror differs from the workers' repaired sample")
	}
	if !bytes.Equal(m2, wireBytes(fresh2)) {
		t.Fatal("spliced R2 mirror differs from the workers' repaired sample")
	}

	st := s.Stats()
	if st.Updates != 1 || st.GraphVersion != 1 || int(st.RepairedSets) != res.Repaired {
		t.Fatalf("stats report %d updates / version %d / %d repaired, want 1 / 1 / %d",
			st.Updates, st.GraphVersion, st.RepairedSets, res.Repaired)
	}
}

// TestDynamicSpliceMatchesRemirror checks the span-translation splice on
// a multi-worker, multi-epoch mirror: the answer computed on the spliced
// mirror must agree with the answer computed after a wholesale re-mirror
// (set order differs between the two, but coverage counts — and hence
// greedy selection and the certificate — are order-invariant).
func TestDynamicSpliceMatchesRemirror(t *testing.T) {
	g := dynGraph(t)
	s := testService(t, Config{Graph: g, Dynamic: true, Machines: 2, SketchK: -1})

	if _, err := s.Query(10, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(10, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(0, dynOps(t, g)); err != nil {
		t.Fatal(err)
	}
	spliced, err := s.Query(10, 0.3)
	if err != nil {
		t.Fatal(err)
	}

	s.growMu.Lock()
	err = s.remirror()
	s.growMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	refetched, err := s.Query(10, 0.3)
	if err != nil {
		t.Fatal(err)
	}

	if len(spliced.Seeds) != len(refetched.Seeds) {
		t.Fatalf("seed counts differ: %d vs %d", len(spliced.Seeds), len(refetched.Seeds))
	}
	for i := range spliced.Seeds {
		if spliced.Seeds[i] != refetched.Seeds[i] {
			t.Fatalf("seed %d differs: %d (spliced) vs %d (re-mirrored)", i, spliced.Seeds[i], refetched.Seeds[i])
		}
	}
	if spliced.Theta != refetched.Theta || spliced.Ratio != refetched.Ratio ||
		spliced.SpreadLower != refetched.SpreadLower || spliced.OptUpper != refetched.OptUpper {
		t.Fatalf("certificates differ between spliced and re-mirrored samples:\n%+v\nvs\n%+v", spliced, refetched)
	}
}

// TestDynamicSequencing covers the version-gate: auto-assigned seqs,
// idempotent replays, gaps, and the rejections for non-dynamic use.
func TestDynamicSequencing(t *testing.T) {
	g := dynGraph(t)
	s := testService(t, Config{Graph: g, Dynamic: true, SketchK: -1})
	if _, err := s.Query(5, 0.4); err != nil {
		t.Fatal(err)
	}

	ops1 := dynOps(t, g)
	r1, err := s.Update(1, ops1)
	if err != nil || !r1.Applied || r1.Seq != 1 {
		t.Fatalf("first batch: %+v, %v", r1, err)
	}
	// Replay of an applied seq is acknowledged without re-executing.
	rep, err := s.Update(1, ops1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied || rep.GraphVersion != 1 {
		t.Fatalf("replay re-applied: %+v", rep)
	}
	// Second batch derives from the mutated graph, auto-sequenced.
	r2, err := s.Update(0, dynOps(t, g))
	if err != nil || !r2.Applied || r2.Seq != 2 {
		t.Fatalf("second batch: %+v, %v", r2, err)
	}
	// A gap is a client error, not a silent reorder.
	if _, err := s.Update(9, dynOps(t, g)); !isBadQuery(err) {
		t.Fatalf("seq gap got %v, want a BadQueryError", err)
	}
	// Empty batches are client errors.
	if _, err := s.Update(0, nil); !isBadQuery(err) {
		t.Fatalf("empty batch got %v, want a BadQueryError", err)
	}
	// An op the graph/model rejects must not advance anything.
	bad := []graph.EdgeUpdate{{Op: graph.OpAdd, From: 1, To: 1, Prob: 0.5}}
	if _, err := s.Update(0, bad); !isBadQuery(err) {
		t.Fatalf("self-loop got %v, want a BadQueryError", err)
	}
	if v := g.Version(); v != 2 {
		t.Fatalf("graph at version %d after rejected batches, want 2", v)
	}

	// Static services refuse updates outright.
	stat := testService(t, Config{SketchK: -1})
	if _, err := stat.Update(0, dynOps(t, dynGraph(t))); !isBadQuery(err) {
		t.Fatalf("static service got %v, want a BadQueryError", err)
	}
}

func isBadQuery(err error) bool {
	var bad *BadQueryError
	return errors.As(err, &bad)
}

// TestDynamicConfigExclusions: subset sampling and restore are
// incompatible with dynamic graphs and must be rejected at New.
func TestDynamicConfigExclusions(t *testing.T) {
	g := dynGraph(t)
	if _, err := New(Config{Graph: g, Model: diffusion.IC, Dynamic: true, Subset: true, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "subset") {
		t.Fatalf("dynamic+subset got %v, want a subset rejection", err)
	}
	if _, err := New(Config{Graph: g, Model: diffusion.IC, Dynamic: true, Restore: true,
		CheckpointDir: t.TempDir(), Seed: 1}); err == nil || !strings.Contains(err.Error(), "restore") {
		t.Fatalf("dynamic+restore got %v, want a restore rejection", err)
	}
}

// TestUpdateDebtDegradesAndHeals: while an update is marked interrupted,
// queries are refused with a typed DegradedError; retrying the same
// batch heals via a full re-mirror and service resumes.
func TestUpdateDebtDegradesAndHeals(t *testing.T) {
	g := dynGraph(t)
	s := testService(t, Config{Graph: g, Dynamic: true, SketchK: -1})
	if _, err := s.Query(5, 0.4); err != nil {
		t.Fatal(err)
	}
	ops := dynOps(t, g)
	if _, err := s.Update(1, ops); err != nil {
		t.Fatal(err)
	}

	// Simulate the interruption window: graph at version 1, mirror debt.
	s.updateDebt.Store(true)
	var deg *DegradedError
	if _, err := s.Query(5, 0.4); !errors.As(err, &deg) {
		t.Fatalf("query under debt got %v, want a DegradedError", err)
	}
	// Retrying the interrupted batch (same seq) heals wholesale.
	res, err := s.Update(1, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied || !res.Remirrored {
		t.Fatalf("retry should heal by re-mirroring, got %+v", res)
	}
	if s.updateDebt.Load() {
		t.Fatal("debt still set after a successful retry")
	}
	if _, err := s.Query(5, 0.4); err != nil {
		t.Fatalf("query after heal: %v", err)
	}
}

// TestSketchStaleFallback (satellite): a fast query whose sketch lags
// the sample epoch must fall back to the certified tier — never serve
// rankings computed on a pre-repair sample — and count the fallback.
func TestSketchStaleFallback(t *testing.T) {
	g := dynGraph(t)
	s := testService(t, Config{Graph: g, Dynamic: true})
	if _, err := s.Query(10, 0.3); err != nil {
		t.Fatal(err)
	}
	fast, err := s.QueryMode(8, 0.3, ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Mode != ModeFast {
		t.Fatalf("warm fast query answered on tier %q", fast.Mode)
	}

	// Pretend the sketch missed the last epoch (the window between an
	// update's publish and its sketch rebuild).
	s.sketchMu.Lock()
	s.skEpoch--
	s.sketchMu.Unlock()
	before := s.stats.skStale.Value()
	ans, err := s.QueryMode(7, 0.3, ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Mode != ModeCertified {
		t.Fatalf("stale-sketch fast query answered on tier %q, want the certified fallback", ans.Mode)
	}
	if got := s.stats.skStale.Value(); got != before+1 {
		t.Fatalf("sketch_stale counter %d, want %d", got, before+1)
	}
	// An update rebuilds the sketch to the new epoch, so fast service
	// resumes (no permanent downgrade).
	if _, err := s.Update(0, dynOps(t, g)); err != nil {
		t.Fatal(err)
	}
	s.sketchMu.RLock()
	skEpoch := s.skEpoch
	s.sketchMu.RUnlock()
	s.mu.RLock()
	epoch := s.epoch
	s.mu.RUnlock()
	if skEpoch != epoch {
		t.Fatalf("sketch at epoch %d after update, sample at %d", skEpoch, epoch)
	}
}

// TestDynamicHTTP drives the whole path over the wire: POST /v1/update
// applies, replays acknowledge, malformed ops 400, /statsz reports the
// dynamic figures, and /v1/seeds answers carry the graph version.
func TestDynamicHTTP(t *testing.T) {
	g := dynGraph(t)
	s := testService(t, Config{Graph: g, Dynamic: true, SketchK: -1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, sb.String()
	}

	if resp, body := post("/v1/seeds", `{"k": 5, "eps": 0.4}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: %d %s", resp.StatusCode, body)
	}

	// Build a JSON batch from the deterministic ops.
	ops := dynOps(t, g)
	var b strings.Builder
	b.WriteString(`{"seq": 1, "ops": [`)
	for i, op := range ops {
		if i > 0 {
			b.WriteString(",")
		}
		kind := map[graph.EdgeOp]string{graph.OpAdd: "add", graph.OpRemove: "remove", graph.OpReweight: "reweight"}[op.Op]
		fmt.Fprintf(&b, `{"op":%q,"from":%d,"to":%d,"prob":%g}`, kind, op.From, op.To, op.Prob)
	}
	b.WriteString(`]}`)

	resp, body := post("/v1/update", b.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"applied":true`) || !strings.Contains(body, `"graph_version":1`) {
		t.Fatalf("update response missing fields: %s", body)
	}

	// Replay acknowledges without applying.
	if resp, body := post("/v1/update", b.String()); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"applied":false`) {
		t.Fatalf("replay: %d %s", resp.StatusCode, body)
	}
	// Unknown op kind is a 400.
	if resp, _ := post("/v1/update", `{"seq": 2, "ops": [{"op":"explode","from":1,"to":2}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op kind: %d", resp.StatusCode)
	}
	// Post-update answers carry the version.
	if resp, body := post("/v1/seeds", `{"k": 5, "eps": 0.4}`); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"graph_version":1`) {
		t.Fatalf("post-update query: %d %s", resp.StatusCode, body)
	}
	// Stats expose the dynamic figures.
	sresp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, sresp.Body); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	stats := sb.String()
	if !strings.Contains(stats, `"graph_version":1`) || !strings.Contains(stats, `"updates":1`) {
		t.Fatalf("statsz missing dynamic figures: %s", stats)
	}
}

// TestDynamicUpdateChaosNever500 (satellite): a worker dying mid-update
// with no replacement must surface as typed 503s — the update, and every
// query while the mirror is behind the graph — never as a 500.
func TestDynamicUpdateChaosNever500(t *testing.T) {
	g := dynGraph(t)
	var fc *cluster.FaultConn
	mk := func(seed uint64, faulty bool) *cluster.Cluster {
		w, err := cluster.NewWorker(cluster.WorkerConfig{Graph: g, Model: diffusion.IC, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		conn := cluster.Conn(cluster.NewLocalConn(w))
		if faulty {
			fc = cluster.NewFaultConn(conn)
			conn = fc
		}
		cl, err := cluster.New([]cluster.Conn{conn}, g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.EnableRecovery(cluster.Recovery{
			Respawn: func(int) (cluster.Conn, error) { return nil, errForever },
			Retries: 1,
			Backoff: time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		return cl
	}
	c1 := mk(0x0111, true)
	c2 := mk(0x0222, false)
	s := testService(t, Config{Graph: g, Dynamic: true, SketchK: -1, C1: c1, C2: c2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if _, err := s.Query(5, 0.4); err != nil {
		t.Fatal(err)
	}
	ops := dynOps(t, g)

	// Kill the R1 worker on its next RPC — the update broadcast.
	fc.KillAtCall(fc.Calls() + 1)
	res, err := s.Update(1, ops)
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("update over a dead worker got (%+v, %v), want a DegradedError", res, err)
	}
	// The graph advanced but the mirror could not follow: queries are
	// typed 503s, not stale answers and not 500s.
	resp, err := http.Post(srv.URL+"/v1/seeds", "application/json", strings.NewReader(`{"k": 5, "eps": 0.4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during update debt: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}
	st := s.Stats()
	if !st.UpdateDebt {
		t.Fatal("statsz does not report the outstanding update debt")
	}
}

var errForever = &neverError{}

type neverError struct{}

func (*neverError) Error() string { return "no replacement worker" }

// TestDynamicCheckpointRecordsDeltas (satellite): a dynamic service with
// a checkpoint directory journals every applied batch as a graph-delta
// segment, and the resulting store refuses to restore.
func TestDynamicCheckpointRecordsDeltas(t *testing.T) {
	dir := t.TempDir()
	g := dynGraph(t)
	s := testService(t, Config{Graph: g, Dynamic: true, SketchK: -1, CheckpointDir: dir, Seed: 42})
	if _, err := s.Query(5, 0.4); err != nil {
		t.Fatal(err)
	}
	res, err := s.Update(0, dynOps(t, g))
	if err != nil {
		t.Fatal(err)
	}

	info, err := store.Verify(dir)
	if err != nil {
		t.Fatalf("store verify after delta append: %v (info %+v)", err, info)
	}
	if len(info.Deltas) != 1 || info.Deltas[0].Seq != 1 || info.Deltas[0].Repaired != res.Repaired {
		t.Fatalf("store deltas %+v, want one at seq 1 with %d repaired", info.Deltas, res.Repaired)
	}
	if info.RepairedSets != res.Repaired {
		t.Fatalf("store reports %d repaired sets, want %d", info.RepairedSets, res.Repaired)
	}

	// The RR segments predate the repair: restoring must refuse.
	s.Close()
	twin := testGraph(t) // same content hash, version 0
	_, err = New(Config{Graph: twin, Model: diffusion.IC, Seed: 42, KMax: 10, EpsFloor: 0.3,
		CheckpointDir: dir, Restore: true, SketchK: -1})
	if err == nil || !strings.Contains(err.Error(), "cannot be restored") {
		t.Fatalf("restore over a dynamic history got %v, want ErrDynamicHistory", err)
	}
}
