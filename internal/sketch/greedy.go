package sketch

import "container/heap"

// SelectGreedy picks q seeds by lazy greedy over sketch-estimated
// marginal gains: the node maximizing the estimated union increase is
// taken each round, with stale heap entries re-evaluated against the
// current merged sketch before they can win (CELF). Estimated gains are
// not exactly submodular — the certificate machinery downstream is what
// makes the fast tier's answers trustworthy — but the selection itself
// is deterministic: ties break toward the smaller node id, and every
// gain is a pure function of the sketch bytes.
//
// Returns the seeds, the estimated union coverage after each prefix,
// and the number of estimator evaluations spent.
func (s *Set) SelectGreedy(q int) (seeds []uint32, covEst []float64, evals int) {
	if q < 1 {
		return nil, nil, 0
	}
	if q > s.n {
		q = s.n
	}
	h := gainHeap{ents: make([]gainEnt, 0, s.n)}
	for v := 0; v < s.n; v++ {
		if s.size[v] == 0 {
			continue
		}
		h.ents = append(h.ents, gainEnt{gain: s.EstimateCovers(uint32(v)), v: uint32(v)})
		evals++
	}
	heap.Init(&h)

	seeds = make([]uint32, 0, q)
	covEst = make([]float64, 0, q)
	cur := make([]uint64, 0, s.k)
	scratch := make([]uint64, 0, s.k)
	var curEst float64
	for len(seeds) < q && h.Len() > 0 {
		top := h.ents[0]
		if int(top.round) != len(seeds) {
			// Stale gain from an earlier round: re-estimate the marginal
			// against the current union and push it back.
			scratch = mergeInto(scratch, cur, s.nodeRanks(top.v), s.k)
			g := s.estFromMerged(scratch) - curEst
			evals++
			if g < 0 {
				g = 0
			}
			h.ents[0].gain = g
			h.ents[0].round = int32(len(seeds))
			heap.Fix(&h, 0)
			continue
		}
		heap.Pop(&h)
		seeds = append(seeds, top.v)
		scratch = mergeInto(scratch, cur, s.nodeRanks(top.v), s.k)
		cur, scratch = scratch, cur
		curEst = s.estFromMerged(cur)
		evals++
		covEst = append(covEst, curEst)
	}
	// Degenerate graphs can hold fewer covered nodes than q; pad with the
	// smallest unchosen ids so callers always get q seeds (their marginal
	// is an estimated zero either way).
	if len(seeds) < q {
		in := make(map[uint32]bool, len(seeds))
		for _, v := range seeds {
			in[v] = true
		}
		for v := uint32(0); len(seeds) < q; v++ {
			if !in[v] {
				seeds = append(seeds, v)
				covEst = append(covEst, curEst)
			}
		}
	}
	return seeds, covEst, evals
}

type gainEnt struct {
	gain  float64
	v     uint32
	round int32 // the selection round the gain was computed in
}

// gainHeap is a max-heap on (gain, then smaller node id) — the id
// tie-break keeps selection deterministic when estimates collide.
type gainHeap struct{ ents []gainEnt }

func (h *gainHeap) Len() int { return len(h.ents) }
func (h *gainHeap) Less(i, j int) bool {
	a, b := h.ents[i], h.ents[j]
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.v < b.v
}
func (h *gainHeap) Swap(i, j int)      { h.ents[i], h.ents[j] = h.ents[j], h.ents[i] }
func (h *gainHeap) Push(x any)         { h.ents = append(h.ents, x.(gainEnt)) }
func (h *gainHeap) Pop() any {
	old := h.ents
	n := len(old)
	x := old[n-1]
	h.ents = old[:n-1]
	return x
}
