// Package sketch implements per-node bottom-k combined reachability
// sketches over the same simulated diffusion instances the RR-set
// machinery samples (Cohen et al., "Sketch-based Influence Maximization
// and Computation"). RR set j is one reverse diffusion instance rooted
// at a uniform node: node v appears in set j exactly when v would have
// reached that root in instance j. A node's influence is therefore
// proportional to how many instances contain it — the quantity the
// resident service's greedy selection counts exactly — and a bottom-k
// sketch of each node's instance set answers the same question in O(k)
// instead of O(coverage).
//
// Every instance j gets a uniform 64-bit rank that is a pure function of
// (rank seed, j) (xrand.SketchRank); node v's sketch keeps the k
// smallest ranks among the instances containing v. The classic bottom-k
// estimator then recovers |instances containing v| as (k−1)/τ where τ is
// the k-th smallest rank mapped to (0, 1], exact below k, with relative
// standard error ≈ 1/√(k−2). Sketches of different nodes merge by
// rank, so seed-set (union) influence and greedy marginal gains come
// from the same O(k) merge — no second pass over the instances.
//
// A Set is built incrementally: Absorb consumes only the instances
// appended since the previous call, mirroring rrset.Index.AppendFrom.
// Because ranks are order-invariant, an Absorb sharded P ways over the
// node space inserts every (node, rank) pair in the same ascending-j
// order at any P, so the sketch bytes are identical at any parallelism.
package sketch

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dimm/internal/rrset"
	"dimm/internal/xrand"
)

// Params pins a sketch to its configuration: the bottom-k size and the
// rank-stream seed. Two sketches are comparable (mergeable, resumable)
// only when both match.
type Params struct {
	// K is the bottom-k size. Estimate quality is ≈ 1/√(K−2) relative
	// standard error; K must be at least 2.
	K int
	// Seed keys the instance→rank stream (xrand.SketchRank).
	Seed uint64
}

// Set holds one bottom-k sketch per node of an n-node graph, in arena
// storage (one flat rank array, stride K) for the same O(1)-GC-objects
// reason as rrset.Collection. A Set is not safe for concurrent
// mutation; concurrent readers are safe between Absorb calls.
type Set struct {
	n     int
	k     int
	seed  uint64
	theta int64 // diffusion instances absorbed so far (ids [0, theta))

	size  []int32  // per node: ranks held, ≤ k
	ranks []uint64 // node v's ranks at [v*k, v*k+size[v]), ascending
}

// New returns an empty sketch set for an n-node graph.
func New(n int, p Params) (*Set, error) {
	if n < 1 {
		return nil, fmt.Errorf("sketch: graph size %d", n)
	}
	if p.K < 2 {
		return nil, fmt.Errorf("sketch: bottom-k size %d below the estimator's minimum 2", p.K)
	}
	return &Set{
		n:     n,
		k:     p.K,
		seed:  p.Seed,
		size:  make([]int32, n),
		ranks: make([]uint64, n*p.K),
	}, nil
}

// N returns the node-space size the sketch covers.
func (s *Set) N() int { return s.n }

// K returns the bottom-k size.
func (s *Set) K() int { return s.k }

// Seed returns the rank-stream seed.
func (s *Set) Seed() uint64 { return s.seed }

// Theta returns how many diffusion instances the sketch has absorbed.
func (s *Set) Theta() int64 { return s.theta }

// RelStdErr returns the estimator's relative standard error, ≈ 1/√(k−2).
func (s *Set) RelStdErr() float64 {
	if s.k <= 2 {
		return 1
	}
	return 1 / math.Sqrt(float64(s.k-2))
}

// Absorb folds the instances [Theta(), snap.Count()) of the R1 snapshot
// into the per-node sketches and returns how many it consumed.
// parallelism shards the node space; the resulting sketch bytes are
// identical at every setting (see the package comment). The snapshot
// must extend the one previous Absorb calls saw — instances are
// identified by their position.
func (s *Set) Absorb(snap rrset.Snapshot, parallelism int) int {
	from := int(s.theta)
	count := snap.Count()
	if count <= from {
		return 0
	}
	if parallelism <= 1 || s.n < 2*parallelism {
		s.absorbRange(snap, from, count, 0, uint32(s.n))
	} else {
		// Shard by node range: every shard scans all new instances but
		// inserts only members in its range, so each (size, ranks) slot
		// has exactly one writer and per-node insertion order stays
		// ascending in j — deterministic and race-free at any P.
		var wg sync.WaitGroup
		chunk := (s.n + parallelism - 1) / parallelism
		for p := 0; p < parallelism; p++ {
			lo := p * chunk
			if lo >= s.n {
				break
			}
			hi := lo + chunk
			if hi > s.n {
				hi = s.n
			}
			wg.Add(1)
			go func(lo, hi uint32) {
				defer wg.Done()
				s.absorbRange(snap, from, count, lo, hi)
			}(uint32(lo), uint32(hi))
		}
		wg.Wait()
	}
	s.theta = int64(count)
	return count - from
}

// absorbRange inserts instances [from, count) for nodes in [lo, hi).
func (s *Set) absorbRange(snap rrset.Snapshot, from, count int, lo, hi uint32) {
	for j := from; j < count; j++ {
		r := xrand.SketchRank(s.seed, uint64(j))
		for _, v := range snap.Set(j) {
			if v >= lo && v < hi {
				s.insert(v, r)
			}
		}
	}
}

// insert adds rank r to node v's bottom-k, keeping the slot sorted.
func (s *Set) insert(v uint32, r uint64) {
	base := int(v) * s.k
	sz := int(s.size[v])
	if sz == s.k && r >= s.ranks[base+sz-1] {
		return
	}
	slot := s.ranks[base : base+sz]
	i := sort.Search(sz, func(i int) bool { return slot[i] >= r })
	if sz < s.k {
		copy(s.ranks[base+i+1:base+sz+1], s.ranks[base+i:base+sz])
		s.size[v]++
	} else {
		copy(s.ranks[base+i+1:base+sz], s.ranks[base+i:base+sz-1])
	}
	s.ranks[base+i] = r
}

// nodeRanks returns node v's sketch, ascending. Aliases the arena.
func (s *Set) nodeRanks(v uint32) []uint64 {
	base := int(v) * s.k
	return s.ranks[base : base+int(s.size[v])]
}

// rankTau maps a 64-bit rank to its uniform (0, 1] position, the τ of
// the bottom-k estimator (same 53-bit mapping as xrand.Float64, shifted
// off zero so τ is never 0).
func rankTau(r uint64) float64 {
	return (float64(r>>11) + 1) * (1.0 / (1 << 53))
}

// estFromMerged is the bottom-k cardinality estimator over a merged
// (ascending, deduplicated, ≤ k long) rank list: exact below k, else
// (k−1)/τ_k.
func (s *Set) estFromMerged(m []uint64) float64 {
	if len(m) < s.k {
		return float64(len(m))
	}
	return float64(s.k-1) / rankTau(m[len(m)-1])
}

// EstimateCovers estimates how many absorbed instances contain v — the
// sketch analogue of the RR index's Degree(v).
func (s *Set) EstimateCovers(v uint32) float64 {
	return s.estFromMerged(s.nodeRanks(v))
}

// EstimateSpread estimates σ({v}) = n·|instances containing v|/θ.
func (s *Set) EstimateSpread(v uint32) float64 {
	if s.theta == 0 {
		return 0
	}
	return float64(s.n) * s.EstimateCovers(v) / float64(s.theta)
}

// mergeInto merges the ascending rank lists a and b into dst (reset to
// length 0), deduplicating by rank and keeping at most k — the combined
// bottom-k sketch of the union. Returns the filled dst.
func mergeInto(dst, a, b []uint64, k int) []uint64 {
	dst = dst[:0]
	i, j := 0, 0
	for len(dst) < k && (i < len(a) || j < len(b)) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			dst = append(dst, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			dst = append(dst, b[j])
			j++
		default: // equal rank: same instance reached via both nodes
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// UnionEstimate estimates how many absorbed instances contain at least
// one of the seeds — the coverage a seed set would score on the RR
// sample — plus how many estimator evaluations it spent (the /statsz
// estimate counter's unit).
func (s *Set) UnionEstimate(seeds []uint32) (est float64, evals int) {
	cur := make([]uint64, 0, s.k)
	scratch := make([]uint64, 0, s.k)
	for _, v := range seeds {
		scratch = mergeInto(scratch, cur, s.nodeRanks(v), s.k)
		cur, scratch = scratch, cur
	}
	return s.estFromMerged(cur), 1
}

// EstimateSpreadSet estimates σ(seeds) = n·union/θ from the sketches
// alone — the fast tier's answer to GET /v1/spread, never touching the
// RR sample.
func (s *Set) EstimateSpreadSet(seeds []uint32) (est float64, evals int) {
	if s.theta == 0 {
		return 0, 0
	}
	u, evals := s.UnionEstimate(seeds)
	return float64(s.n) * u / float64(s.theta), evals
}
