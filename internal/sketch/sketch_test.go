package sketch

import (
	"bytes"
	"math"
	"testing"

	"dimm/internal/rrset"
	"dimm/internal/xrand"
)

// genInstances builds a deterministic synthetic instance collection:
// count diffusion instances over n nodes, node membership biased so low
// ids are heavily covered (exercising the estimator regime) and high ids
// sparsely (exercising the exact regime).
func genInstances(t *testing.T, n, count int, seed uint64) (*rrset.Collection, [][]bool) {
	t.Helper()
	c := rrset.NewCollection(0)
	member := make([][]bool, n) // member[v][j]
	for v := range member {
		member[v] = make([]bool, count)
	}
	rng := xrand.New(seed)
	var buf []uint32
	for j := 0; j < count; j++ {
		buf = buf[:0]
		for v := 0; v < n; v++ {
			// Coverage falls off with the node id: node 0 is in ~60% of
			// instances, the tail in well under k of them.
			p := 0.6 / (1 + float64(v)/8)
			if rng.Bernoulli(p) {
				buf = append(buf, uint32(v))
				member[v][j] = true
			}
		}
		c.Append(buf, int64(len(buf)))
	}
	return c, member
}

func trueCovers(member [][]bool, v uint32) int {
	n := 0
	for _, in := range member[v] {
		if in {
			n++
		}
	}
	return n
}

func trueUnion(member [][]bool, seeds []uint32) int {
	if len(member) == 0 {
		return 0
	}
	count := len(member[0])
	n := 0
	for j := 0; j < count; j++ {
		for _, v := range seeds {
			if member[v][j] {
				n++
				break
			}
		}
	}
	return n
}

func mustNew(t *testing.T, n int, p Params) *Set {
	t.Helper()
	s, err := New(n, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEstimatorExactBelowK(t *testing.T) {
	c, member := genInstances(t, 200, 1500, 7)
	s := mustNew(t, 200, Params{K: 64, Seed: 99})
	s.Absorb(c.Snapshot(), 1)
	exactChecked := 0
	for v := uint32(0); v < 200; v++ {
		truth := trueCovers(member, v)
		if truth < 64 {
			if got := s.EstimateCovers(v); got != float64(truth) {
				t.Fatalf("node %d: %d instances (< k) should be exact, estimated %.2f", v, truth, got)
			}
			exactChecked++
		}
	}
	if exactChecked == 0 {
		t.Fatal("test instance has no sub-k nodes; estimator's exact regime untested")
	}
}

func TestEstimatorAccuracyAboveK(t *testing.T) {
	const k = 64
	c, member := genInstances(t, 200, 1500, 7)
	s := mustNew(t, 200, Params{K: k, Seed: 99})
	s.Absorb(c.Snapshot(), 1)
	tol := 6 / math.Sqrt(k-2) // 6 relative standard errors
	checked := 0
	for v := uint32(0); v < 200; v++ {
		truth := trueCovers(member, v)
		if truth < 4*k {
			continue
		}
		got := s.EstimateCovers(v)
		if rel := math.Abs(got-float64(truth)) / float64(truth); rel > tol {
			t.Errorf("node %d: true %d, estimated %.1f (rel err %.3f > %.3f)", v, truth, got, rel, tol)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d nodes in the estimator regime; instance generator drifted", checked)
	}
	// Union estimate over a spread-out seed set.
	seeds := []uint32{0, 17, 40, 90, 150}
	truth := trueUnion(member, seeds)
	got, _ := s.UnionEstimate(seeds)
	if rel := math.Abs(got-float64(truth)) / float64(truth); rel > tol {
		t.Errorf("union of %v: true %d, estimated %.1f (rel err %.3f > %.3f)", seeds, truth, got, rel, tol)
	}
}

// TestAbsorbParallelismDeterminism is the satellite determinism check:
// the sketch bytes must be identical at P ∈ {1, 2, 4}, one-shot or
// incrementally absorbed, because every (instance, rank) pair is a pure
// function of position. Run under -race this also proves the node-range
// sharding writes are disjoint.
func TestAbsorbParallelismDeterminism(t *testing.T) {
	c, _ := genInstances(t, 301, 1200, 21) // odd n: uneven shard ranges
	snap := c.Snapshot()
	var want []byte
	for _, p := range []int{1, 2, 4} {
		s := mustNew(t, 301, Params{K: 32, Seed: 5})
		s.Absorb(snap, p)
		enc := s.Encode()
		if want == nil {
			want = enc
			continue
		}
		if !bytes.Equal(want, enc) {
			t.Fatalf("sketch bytes differ between parallelism 1 and %d", p)
		}
	}
	// Incremental absorption in three uneven chunks must land on the same
	// bytes as one shot: ranks are positional, not arrival-ordered.
	for _, p := range []int{1, 4} {
		s := mustNew(t, 301, Params{K: 32, Seed: 5})
		partial := rrset.NewCollection(0)
		cuts := []int{1, 700, 1100, snap.Count()}
		prev := 0
		for _, cut := range cuts {
			for j := prev; j < cut; j++ {
				partial.Append(snap.Set(j), 0)
			}
			prev = cut
			s.Absorb(partial.Snapshot(), p)
		}
		if !bytes.Equal(want, s.Encode()) {
			t.Fatalf("incremental absorb at parallelism %d diverged from one-shot bytes", p)
		}
	}
}

func TestSelectGreedyDeterministicAndCovering(t *testing.T) {
	c, member := genInstances(t, 150, 1000, 3)
	s := mustNew(t, 150, Params{K: 64, Seed: 11})
	s.Absorb(c.Snapshot(), 2)

	seeds, covEst, evals := s.SelectGreedy(8)
	if len(seeds) != 8 || len(covEst) != 8 {
		t.Fatalf("got %d seeds, %d prefix estimates", len(seeds), len(covEst))
	}
	if evals <= 0 {
		t.Fatal("estimator evaluation count not tracked")
	}
	seen := map[uint32]bool{}
	for _, v := range seeds {
		if seen[v] {
			t.Fatalf("seed %d selected twice", v)
		}
		seen[v] = true
	}
	for i := 1; i < len(covEst); i++ {
		if covEst[i] < covEst[i-1] {
			t.Fatalf("prefix coverage estimates decreased: %v", covEst)
		}
	}
	// Same sketch, same call → identical selection.
	again, _, _ := s.SelectGreedy(8)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatalf("selection not deterministic: %v vs %v", seeds, again)
		}
	}
	// The sketch-greedy seed set should cover nearly as much as it
	// estimates, judged against ground truth.
	truth := float64(trueUnion(member, seeds))
	if est := covEst[len(covEst)-1]; math.Abs(est-truth)/truth > 0.5 {
		t.Fatalf("greedy coverage estimate %.1f far from true union %.0f", est, truth)
	}
	// A greedy pick should beat the worst singleton by a wide margin.
	if truth < float64(trueCovers(member, seeds[0])) {
		t.Fatal("union of 8 greedy seeds below its own first pick")
	}
}

func TestSelectGreedyPadsShortGraphs(t *testing.T) {
	c := rrset.NewCollection(0)
	c.Append([]uint32{2}, 0) // only node 2 ever covered
	s := mustNew(t, 5, Params{K: 4, Seed: 1})
	s.Absorb(c.Snapshot(), 1)
	seeds, _, _ := s.SelectGreedy(3)
	if len(seeds) != 3 || seeds[0] != 2 {
		t.Fatalf("want [2 pad pad], got %v", seeds)
	}
	if seeds[1] == seeds[0] || seeds[2] == seeds[0] || seeds[1] == seeds[2] {
		t.Fatalf("padding repeated a seed: %v", seeds)
	}
}

func TestEstimateSpreadScaling(t *testing.T) {
	c, member := genInstances(t, 100, 800, 13)
	s := mustNew(t, 100, Params{K: 48, Seed: 2})
	s.Absorb(c.Snapshot(), 1)
	truth := float64(trueCovers(member, 0)) * 100 / 800
	got := s.EstimateSpread(0)
	if math.Abs(got-truth)/truth > 1 {
		t.Fatalf("spread estimate %.2f far from %.2f", got, truth)
	}
	est, evals := s.EstimateSpreadSet([]uint32{0, 50})
	if est <= 0 || evals != 1 {
		t.Fatalf("EstimateSpreadSet = %.2f with %d evals", est, evals)
	}
}
