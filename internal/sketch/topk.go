package sketch

import "sort"

// TopCandidates returns the c nodes with the largest estimated instance
// coverage, plus the estimator evaluations spent. This is the fast
// tier's pruning primitive (SKIM-style): a greedy pick's marginal gain
// never exceeds its instance coverage, so a pool of the top-c estimated
// coverages with c comfortably above k almost surely contains every node
// exact greedy would select — selection then runs on the RR sample
// restricted to the pool, O(c) candidates instead of O(n).
//
// Deterministic: ordered by (estimate descending, node id ascending),
// ties broken toward smaller ids like every selection path in the repo.
func (s *Set) TopCandidates(c int) ([]uint32, int) {
	if c < 1 {
		return nil, 0
	}
	if c > s.n {
		c = s.n
	}
	type cand struct {
		est float64
		v   uint32
	}
	cands := make([]cand, 0, s.n)
	evals := 0
	for v := 0; v < s.n; v++ {
		if s.size[v] == 0 {
			continue
		}
		cands = append(cands, cand{est: s.EstimateCovers(uint32(v)), v: uint32(v)})
		evals++
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].est != cands[j].est {
			return cands[i].est > cands[j].est
		}
		return cands[i].v < cands[j].v
	})
	if len(cands) > c {
		cands = cands[:c]
	}
	out := make([]uint32, len(cands))
	for i, e := range cands {
		out[i] = e.v
	}
	return out, evals
}
