package sketch

import (
	"encoding/binary"
	"fmt"

	"dimm/internal/checksum"
)

// Sketch checkpoint layout (all little-endian), the same
// header+CRC32C-footer discipline as internal/store segments:
//
//	offset  size  field
//	0       4     magic "DSKC" (0x434b5344)
//	4       4     format version (1)
//	8       8     rank-stream seed
//	16      8     theta (instances absorbed)
//	24      4     n (node-space size)
//	28      4     k (bottom-k size)
//	32      ...   payload: per node, u32 size then size ascending u64 ranks
//	end-4   4     CRC32C over header + payload
const (
	wireMagic      = 0x434b5344 // "DSKC"
	wireVersion    = 1
	wireHeaderSize = 32
	wireFooterSize = 4
)

// ChecksumError reports an encoded sketch whose CRC32C footer does not
// match its bytes — a flipped bit anywhere in the blob.
type ChecksumError struct {
	Want, Got uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("sketch: encoded sketch failed its CRC32C check (footer %#x, computed %#x)", e.Want, e.Got)
}

// TruncatedError reports an encoded sketch shorter than its framing
// requires — an interrupted or clipped write.
type TruncatedError struct {
	WantBytes, GotBytes int64
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("sketch: encoded sketch is %d bytes, needs at least %d", e.GotBytes, e.WantBytes)
}

// FormatError reports an encoded sketch whose checksum verified but
// whose structure is inconsistent (wrong magic or version, payload that
// does not decode to the declared shape — usually a foreign file).
type FormatError struct {
	Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("sketch: malformed sketch encoding: %s", e.Reason)
}

// MismatchError reports a decoded sketch built under a different
// configuration than the one trying to adopt it — the sketch analogue of
// store.FingerprintMismatchError.
type MismatchError struct {
	Field     string
	Want, Got string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("sketch: mismatch on %s: sketch has %s, configuration wants %s",
		e.Field, e.Got, e.Want)
}

// EncodedSize returns how many bytes Encode produces.
func (s *Set) EncodedSize() int {
	var ranks int64
	for _, sz := range s.size {
		ranks += int64(sz)
	}
	return wireHeaderSize + 4*s.n + 8*int(ranks) + wireFooterSize
}

// Encode serializes the sketch set. The output is a deterministic
// function of the sketch contents — nodes in id order, ranks ascending —
// so builds at different parallelism (which produce identical sketches)
// produce identical bytes.
func (s *Set) Encode() []byte {
	buf := make([]byte, wireHeaderSize, s.EncodedSize())
	binary.LittleEndian.PutUint32(buf[0:], wireMagic)
	binary.LittleEndian.PutUint32(buf[4:], wireVersion)
	binary.LittleEndian.PutUint64(buf[8:], s.seed)
	binary.LittleEndian.PutUint64(buf[16:], uint64(s.theta))
	binary.LittleEndian.PutUint32(buf[24:], uint32(s.n))
	binary.LittleEndian.PutUint32(buf[28:], uint32(s.k))
	var u32 [4]byte
	var u64 [8]byte
	for v := 0; v < s.n; v++ {
		binary.LittleEndian.PutUint32(u32[:], uint32(s.size[v]))
		buf = append(buf, u32[:]...)
		for _, r := range s.nodeRanks(uint32(v)) {
			binary.LittleEndian.PutUint64(u64[:], r)
			buf = append(buf, u64[:]...)
		}
	}
	crc := checksum.Sum(buf)
	binary.LittleEndian.PutUint32(u32[:], crc)
	return append(buf, u32[:]...)
}

// Decode reconstructs a sketch set from Encode output, rejecting any
// damage with a typed error: TruncatedError for clipped bytes,
// ChecksumError for a flipped bit, FormatError for structural
// inconsistency.
func Decode(data []byte) (*Set, error) {
	if len(data) < wireHeaderSize+wireFooterSize {
		return nil, &TruncatedError{WantBytes: wireHeaderSize + wireFooterSize, GotBytes: int64(len(data))}
	}
	body := data[:len(data)-wireFooterSize]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-wireFooterSize:])
	if got := checksum.Sum(body); got != wantCRC {
		return nil, &ChecksumError{Want: wantCRC, Got: got}
	}
	if magic := binary.LittleEndian.Uint32(body[0:]); magic != wireMagic {
		return nil, &FormatError{Reason: fmt.Sprintf("bad magic %#x", magic)}
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != wireVersion {
		return nil, &FormatError{Reason: fmt.Sprintf("sketch version %d, this build reads %d", v, wireVersion)}
	}
	seed := binary.LittleEndian.Uint64(body[8:])
	theta := int64(binary.LittleEndian.Uint64(body[16:]))
	n := int(binary.LittleEndian.Uint32(body[24:]))
	k := int(binary.LittleEndian.Uint32(body[28:]))
	if n < 1 || k < 2 || theta < 0 {
		return nil, &FormatError{Reason: fmt.Sprintf("implausible header: n=%d k=%d theta=%d", n, k, theta)}
	}
	s, err := New(n, Params{K: k, Seed: seed})
	if err != nil {
		return nil, &FormatError{Reason: err.Error()}
	}
	s.theta = theta
	payload := body[wireHeaderSize:]
	off := 0
	for v := 0; v < n; v++ {
		if off+4 > len(payload) {
			return nil, &FormatError{Reason: fmt.Sprintf("payload ends inside node %d's size", v)}
		}
		sz := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if sz > k {
			return nil, &FormatError{Reason: fmt.Sprintf("node %d holds %d ranks, k is %d", v, sz, k)}
		}
		if off+8*sz > len(payload) {
			return nil, &FormatError{Reason: fmt.Sprintf("payload ends inside node %d's ranks", v)}
		}
		base := v * k
		var prev uint64
		for i := 0; i < sz; i++ {
			r := binary.LittleEndian.Uint64(payload[off:])
			off += 8
			if i > 0 && r <= prev {
				return nil, &FormatError{Reason: fmt.Sprintf("node %d's ranks are not strictly ascending", v)}
			}
			s.ranks[base+i] = r
			prev = r
		}
		s.size[v] = int32(sz)
	}
	if off != len(payload) {
		return nil, &FormatError{Reason: fmt.Sprintf("%d trailing payload bytes", len(payload)-off)}
	}
	return s, nil
}

// Verify checks a decoded sketch against the configuration that wants to
// adopt it, returning a *MismatchError naming the first differing field.
func (s *Set) Verify(n int, p Params) error {
	mk := func(field string, want, got any) error {
		return &MismatchError{Field: field, Want: fmt.Sprint(want), Got: fmt.Sprint(got)}
	}
	switch {
	case s.n != n:
		return mk("nodes", n, s.n)
	case s.k != p.K:
		return mk("k", p.K, s.k)
	case s.seed != p.Seed:
		return mk("seed", p.Seed, s.seed)
	}
	return nil
}
