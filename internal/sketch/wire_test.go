package sketch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"dimm/internal/checksum"
)

func buildSet(t *testing.T) *Set {
	t.Helper()
	c, _ := genInstances(t, 120, 900, 31)
	s := mustNew(t, 120, Params{K: 16, Seed: 77})
	s.Absorb(c.Snapshot(), 2)
	return s
}

func TestWireRoundTripByteIdentity(t *testing.T) {
	s := buildSet(t)
	enc := s.Encode()
	if len(enc) != s.EncodedSize() {
		t.Fatalf("EncodedSize says %d, Encode produced %d", s.EncodedSize(), len(enc))
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.N() != s.N() || dec.K() != s.K() || dec.Seed() != s.Seed() || dec.Theta() != s.Theta() {
		t.Fatalf("header drifted through the round trip: %+v vs %+v", dec, s)
	}
	// Byte identity: re-encoding the decoded sketch reproduces the
	// original encoding exactly.
	if !bytes.Equal(enc, dec.Encode()) {
		t.Fatal("decode→encode is not byte-identical")
	}
	if err := dec.Verify(s.N(), Params{K: s.K(), Seed: s.Seed()}); err != nil {
		t.Fatalf("round-tripped sketch fails Verify: %v", err)
	}
	// The decoded sketch keeps absorbing where the original left off.
	more := buildSet(t)
	if !bytes.Equal(more.Encode(), dec.Encode()) {
		t.Fatal("decoded sketch diverged from an identically built one")
	}
}

// TestWireCorruptionMatrix is the satellite corruption matrix: a flipped
// bit, a truncation, and a configuration mismatch must each surface as
// its own typed error, never as a silently adopted sketch.
func TestWireCorruptionMatrix(t *testing.T) {
	s := buildSet(t)
	enc := s.Encode()

	t.Run("bit flip", func(t *testing.T) {
		// Flip one bit in each region: header, payload, footer.
		for _, off := range []int{5, 16, wireHeaderSize + 9, len(enc) - 2} {
			bad := append([]byte(nil), enc...)
			bad[off] ^= 0x10
			_, err := Decode(bad)
			var ce *ChecksumError
			if !errors.As(err, &ce) {
				t.Fatalf("flip at %d: want *ChecksumError, got %v", off, err)
			}
		}
	})

	t.Run("truncation", func(t *testing.T) {
		// Below the fixed framing: the truncation error, with sizes.
		short := enc[:wireHeaderSize+wireFooterSize-3]
		var te *TruncatedError
		if _, err := Decode(short); !errors.As(err, &te) {
			t.Fatalf("want *TruncatedError, got %v", err)
		} else if te.GotBytes != int64(len(short)) {
			t.Fatalf("truncation error reports %d bytes, file had %d", te.GotBytes, len(short))
		}
		// Mid-payload truncation still frames a footer, so the checksum
		// is what catches it — never a successful decode.
		if _, err := Decode(enc[:len(enc)/2]); err == nil {
			t.Fatal("half the bytes decoded without error")
		}
		// Empty input.
		if _, err := Decode(nil); !errors.As(err, &te) {
			t.Fatalf("nil input: want *TruncatedError, got %v", err)
		}
	})

	t.Run("foreign bytes", func(t *testing.T) {
		// A checksummed blob with the wrong magic: FormatError, not
		// ChecksumError — the bytes are intact, just not a sketch.
		other := append([]byte(nil), enc...)
		other[0] ^= 0xff
		// recompute a valid footer over the damaged body
		fixed, err := reframe(other)
		if err != nil {
			t.Fatal(err)
		}
		var fe *FormatError
		if _, err := Decode(fixed); !errors.As(err, &fe) {
			t.Fatalf("want *FormatError, got %v", err)
		}
	})

	t.Run("fingerprint mismatch", func(t *testing.T) {
		dec, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct {
			n     int
			p     Params
			field string
		}{
			{dec.N() + 1, Params{K: dec.K(), Seed: dec.Seed()}, "nodes"},
			{dec.N(), Params{K: dec.K() * 2, Seed: dec.Seed()}, "k"},
			{dec.N(), Params{K: dec.K(), Seed: dec.Seed() + 1}, "seed"},
		}
		for _, c := range cases {
			var me *MismatchError
			if err := dec.Verify(c.n, c.p); !errors.As(err, &me) {
				t.Fatalf("%s: want *MismatchError, got %v", c.field, err)
			} else if me.Field != c.field {
				t.Fatalf("want mismatch on %q, got %q", c.field, me.Field)
			}
		}
	})
}

// reframe recomputes the CRC32C footer over a (possibly modified) body.
func reframe(framed []byte) ([]byte, error) {
	if len(framed) < wireHeaderSize+wireFooterSize {
		return nil, errors.New("too short to reframe")
	}
	body := append([]byte(nil), framed[:len(framed)-wireFooterSize]...)
	var footer [wireFooterSize]byte
	binary.LittleEndian.PutUint32(footer[:], checksum.Sum(body))
	return append(body, footer[:]...), nil
}
