package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dimm/internal/checksum"
	"dimm/internal/mutate"
)

// Graph-delta segments record the dynamic half of a store's history:
// every edge-update batch a dynamic service applied, in order, next to
// the RR segments its growth epochs produced. They make the store an
// auditable journal — dimmstore info/verify show exactly which graph
// the stored sample was repaired to — but they also poison restore:
// an update repairs RR sets *in place* in the resident mirrors, and
// published RR segments are never rewritten, so once a delta exists the
// stored sets predate the repairs and no longer describe any graph the
// service served. Restore refuses with ErrDynamicHistory rather than
// resurrecting a sample whose certificates were computed for a graph
// that no longer exists.
//
// Delta segment file layout (all little-endian):
//
//	offset  size  field
//	0       4     magic "DDLT" (0x544C4444)
//	4       4     format version (1)
//	8       8     graph version the batch advanced the graph to (= seq)
//	16      8     sample epoch published after the repair
//	24      4     RR sets repaired in place across both mirrors
//	28      4     flags (bit 0: mirrors were refetched wholesale)
//	32      8     payload length in bytes
//	40      ...   payload: mutate.EncodeBatch wire bytes
//	40+len  4     CRC32C over header + payload
const (
	deltaMagic      = 0x544C4444 // "DDLT"
	deltaVersion    = 1
	deltaHeaderSize = 40
	deltaPrefix     = "delta-"
	deltaSuffix     = ".gd"

	deltaFlagRemirrored = 1 << 0
)

// ErrDynamicHistory reports a restore attempt on a store whose history
// includes graph-delta segments: the stored RR segments predate the
// in-place repairs those deltas drove, so no combination of them
// reconstructs the sample the service actually held.
var ErrDynamicHistory = errors.New(
	"store: history includes graph-update deltas; the stored RR segments predate in-place repairs and cannot be restored (dynamic services start cold)")

// DeltaRecord is one manifest row for a graph-delta segment.
type DeltaRecord struct {
	// Seq is the batch's sequence number, which is also the graph version
	// it advanced the graph to.
	Seq uint64 `json:"seq"`
	// Epoch is the sample epoch the service published after the repair.
	Epoch uint64 `json:"epoch"`
	// Ops is how many edge updates the batch holds.
	Ops int `json:"ops"`
	// Repaired is how many resident RR sets were regenerated in place;
	// Remirrored records the fallback where the mirrors were refetched
	// wholesale instead.
	Repaired   int  `json:"repaired"`
	Remirrored bool `json:"remirrored,omitempty"`
	// File is the segment's name within the store directory; Bytes its
	// full size, footer included; CRC duplicates the CRC32C footer.
	File  string `json:"file"`
	Bytes int64  `json:"bytes"`
	CRC   uint32 `json:"crc"`
}

// Deltas returns how many graph-delta segments the store holds.
func (s *Store) Deltas() int { return len(s.man.Deltas) }

// AppendDelta seals one applied edge-update batch as a graph-delta
// segment and publishes it in the manifest. epoch is the sample epoch
// the service published after the repair; repaired and remirrored
// summarize what the repair did (see DeltaRecord). Batches must arrive
// in sequence order, matching the graph's own versioning.
func (s *Store) AppendDelta(epoch uint64, b mutate.Batch, repaired int, remirrored bool) (int64, error) {
	if len(b.Ops) == 0 {
		return 0, fmt.Errorf("store: empty delta batch")
	}
	if n := len(s.man.Deltas); n > 0 && b.Seq <= s.man.Deltas[n-1].Seq {
		return 0, fmt.Errorf("store: delta seq %d not after the stored seq %d", b.Seq, s.man.Deltas[n-1].Seq)
	}
	name := fmt.Sprintf("%s%06d%s", deltaPrefix, s.man.NextSeg, deltaSuffix)
	path := filepath.Join(s.dir, name)
	rec, err := writeDelta(path, epoch, b, repaired, remirrored)
	if err != nil {
		return 0, err
	}
	rec.File = name
	man := s.man
	man.NextSeg++
	man.Deltas = append(append([]DeltaRecord(nil), s.man.Deltas...), rec)
	if err := writeManifest(s.dir, man); err != nil {
		os.Remove(path) // unpublished segment; do not leave an orphan
		return 0, err
	}
	s.man = man
	return rec.Bytes, nil
}

// writeDelta seals one batch into a delta segment file at path, durably
// (write temp + fsync + rename), returning its manifest record with
// File left blank for the caller to fill in.
func writeDelta(path string, epoch uint64, b mutate.Batch, repaired int, remirrored bool) (DeltaRecord, error) {
	payload := mutate.EncodeBatch(nil, b)
	buf := make([]byte, deltaHeaderSize, deltaHeaderSize+len(payload)+segFooterSize)
	binary.LittleEndian.PutUint32(buf[0:], deltaMagic)
	binary.LittleEndian.PutUint32(buf[4:], deltaVersion)
	binary.LittleEndian.PutUint64(buf[8:], b.Seq)
	binary.LittleEndian.PutUint64(buf[16:], epoch)
	binary.LittleEndian.PutUint32(buf[24:], uint32(repaired))
	var flags uint32
	if remirrored {
		flags |= deltaFlagRemirrored
	}
	binary.LittleEndian.PutUint32(buf[28:], flags)
	binary.LittleEndian.PutUint64(buf[32:], uint64(len(payload)))
	buf = append(buf, payload...)
	crc := checksum.Sum(buf)
	var footer [segFooterSize]byte
	binary.LittleEndian.PutUint32(footer[:], crc)
	buf = append(buf, footer[:]...)

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return DeltaRecord{}, fmt.Errorf("store: staging delta segment: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return DeltaRecord{}, fmt.Errorf("store: writing delta segment %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return DeltaRecord{}, fmt.Errorf("store: closing delta segment %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return DeltaRecord{}, fmt.Errorf("store: publishing delta segment %s: %w", path, err)
	}
	return DeltaRecord{
		Seq:        b.Seq,
		Epoch:      epoch,
		Ops:        len(b.Ops),
		Repaired:   repaired,
		Remirrored: remirrored,
		Bytes:      int64(len(buf)),
		CRC:        crc,
	}, nil
}

// readDelta loads and fully verifies the delta segment rec points at,
// returning the decoded batch. The check order mirrors readSegment:
// size, CRC32C, magic/version, header-vs-manifest consistency, then the
// wire decode itself.
func readDelta(path string, rec DeltaRecord) (mutate.Batch, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return mutate.Batch{}, &ManifestStaleError{Dir: filepath.Dir(path), Reason: fmt.Sprintf("delta segment %s listed in the manifest is missing", rec.File)}
	}
	if err != nil {
		return mutate.Batch{}, fmt.Errorf("store: reading delta segment %s: %w", path, err)
	}
	if int64(len(data)) != rec.Bytes {
		return mutate.Batch{}, &SegmentTruncatedError{Path: path, WantBytes: rec.Bytes, GotBytes: int64(len(data))}
	}
	if len(data) < deltaHeaderSize+segFooterSize {
		return mutate.Batch{}, &SegmentTruncatedError{Path: path, WantBytes: deltaHeaderSize + segFooterSize, GotBytes: int64(len(data))}
	}
	body := data[:len(data)-segFooterSize]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-segFooterSize:])
	if got := checksum.Sum(body); got != wantCRC {
		return mutate.Batch{}, &SegmentChecksumError{Path: path, Want: wantCRC, Got: got}
	}
	if magic := binary.LittleEndian.Uint32(body[0:]); magic != deltaMagic {
		return mutate.Batch{}, &CorruptSegmentError{Path: path, Reason: fmt.Sprintf("bad magic %#x", magic)}
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != deltaVersion {
		return mutate.Batch{}, &CorruptSegmentError{Path: path, Reason: fmt.Sprintf("delta version %d, this build reads %d", v, deltaVersion)}
	}
	seq := binary.LittleEndian.Uint64(body[8:])
	epoch := binary.LittleEndian.Uint64(body[16:])
	repaired := int(binary.LittleEndian.Uint32(body[24:]))
	flags := binary.LittleEndian.Uint32(body[28:])
	payloadLen := binary.LittleEndian.Uint64(body[32:])
	remirrored := flags&deltaFlagRemirrored != 0
	if seq != rec.Seq || epoch != rec.Epoch || repaired != rec.Repaired || remirrored != rec.Remirrored {
		return mutate.Batch{}, &ManifestStaleError{Dir: filepath.Dir(path), Reason: fmt.Sprintf(
			"delta segment %s holds seq %d epoch %d (%d repaired), manifest recorded seq %d epoch %d (%d repaired)",
			rec.File, seq, epoch, repaired, rec.Seq, rec.Epoch, rec.Repaired)}
	}
	if int(payloadLen) != len(body)-deltaHeaderSize {
		return mutate.Batch{}, &CorruptSegmentError{Path: path, Reason: fmt.Sprintf(
			"declared payload %d bytes, file holds %d", payloadLen, len(body)-deltaHeaderSize)}
	}
	b, used, err := mutate.DecodeBatch(body[deltaHeaderSize:])
	if err != nil {
		return mutate.Batch{}, &CorruptSegmentError{Path: path, Reason: err.Error()}
	}
	if used != len(body)-deltaHeaderSize {
		return mutate.Batch{}, &CorruptSegmentError{Path: path, Reason: fmt.Sprintf(
			"payload decodes to %d bytes with %d trailing", used, len(body)-deltaHeaderSize-used)}
	}
	if b.Seq != seq || len(b.Ops) != rec.Ops {
		return mutate.Batch{}, &CorruptSegmentError{Path: path, Reason: fmt.Sprintf(
			"payload batch has seq %d with %d ops, header/manifest declared seq %d with %d",
			b.Seq, len(b.Ops), seq, rec.Ops)}
	}
	return b, nil
}

// ReplayDeltas reads and verifies every graph-delta segment in order,
// returning the decoded batches — the tooling view of the store's
// dynamic history (dimmstore info prints it; a future offline compactor
// could apply it to a stored graph).
func (s *Store) ReplayDeltas() ([]mutate.Batch, error) {
	batches := make([]mutate.Batch, 0, len(s.man.Deltas))
	for _, rec := range s.man.Deltas {
		b, err := readDelta(s.segPath(rec.File), rec)
		if err != nil {
			return nil, err
		}
		batches = append(batches, b)
	}
	return batches, nil
}
