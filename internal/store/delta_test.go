package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dimm/internal/graph"
	"dimm/internal/mutate"
)

func testBatch(seq uint64) mutate.Batch {
	return mutate.Batch{Seq: seq, Ops: []graph.EdgeUpdate{
		{Op: graph.OpRemove, From: 3, To: 7},
		{Op: graph.OpAdd, From: 1, To: 2, Prob: 0.9},
		{Op: graph.OpReweight, From: 5, To: 6, Prob: 0.25},
	}}
}

func TestDeltaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := testCollections(10)
	if _, err := s.Checkpoint(1, r1, r2); err != nil {
		t.Fatal(err)
	}

	b1, b2 := testBatch(1), testBatch(2)
	if n, err := s.AppendDelta(2, b1, 4, false); err != nil || n <= 0 {
		t.Fatalf("AppendDelta 1: bytes=%d err=%v", n, err)
	}
	if n, err := s.AppendDelta(3, b2, 0, true); err != nil || n <= 0 {
		t.Fatalf("AppendDelta 2: bytes=%d err=%v", n, err)
	}
	if s.Deltas() != 2 {
		t.Fatalf("store holds %d deltas, want 2", s.Deltas())
	}

	// Reopen: the manifest round-trips the records and replay decodes
	// the exact batches back.
	s2, err := Open(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	batches, err := s2.ReplayDeltas()
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(batches))
	}
	for i, want := range []mutate.Batch{b1, b2} {
		got := batches[i]
		if got.Seq != want.Seq || len(got.Ops) != len(want.Ops) {
			t.Fatalf("batch %d: got seq %d with %d ops, want seq %d with %d", i, got.Seq, len(got.Ops), want.Seq, len(want.Ops))
		}
		for j := range want.Ops {
			if got.Ops[j] != want.Ops[j] {
				t.Fatalf("batch %d op %d: %+v, want %+v", i, j, got.Ops[j], want.Ops[j])
			}
		}
	}

	info, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(info.Deltas) != 2 || info.RepairedSets != 4 {
		t.Fatalf("info holds %d deltas / %d repaired, want 2 / 4", len(info.Deltas), info.RepairedSets)
	}
	if !info.Deltas[1].Remirrored || info.Deltas[0].Remirrored {
		t.Fatalf("remirrored flags wrong: %+v", info.Deltas)
	}

	// Out-of-order and empty batches are rejected.
	if _, err := s2.AppendDelta(4, testBatch(2), 0, false); err == nil {
		t.Fatal("stale delta seq accepted")
	}
	if _, err := s2.AppendDelta(4, mutate.Batch{Seq: 3}, 0, false); err == nil {
		t.Fatal("empty delta batch accepted")
	}
}

func TestDeltaPoisonsRestore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := testCollections(10)
	if _, err := s.Checkpoint(1, r1, r2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restore(100); err != nil {
		t.Fatalf("pre-delta restore: %v", err)
	}
	if _, err := s.AppendDelta(2, testBatch(1), 3, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restore(100); !errors.Is(err, ErrDynamicHistory) {
		t.Fatalf("post-delta restore got %v, want ErrDynamicHistory", err)
	}
	// RR checkpoints keep appending fine: the journal only poisons
	// restore, not the store itself.
	r1.Append([]uint32{9}, 0)
	r2.Append([]uint32{8}, 0)
	if _, err := s.Checkpoint(2, r1, r2); err != nil {
		t.Fatalf("post-delta checkpoint: %v", err)
	}
}

func TestDeltaCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendDelta(1, testBatch(1), 2, false); err != nil {
		t.Fatal(err)
	}
	name := s.man.Deltas[0].File
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped payload bit fails the CRC.
	bad := append([]byte(nil), data...)
	bad[deltaHeaderSize+2] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	var crcErr *SegmentChecksumError
	if _, err := Verify(dir); !errors.As(err, &crcErr) {
		t.Fatalf("flipped bit got %v, want a SegmentChecksumError", err)
	}

	// Truncation is caught by the size check.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var truncErr *SegmentTruncatedError
	if _, err := Verify(dir); !errors.As(err, &truncErr) {
		t.Fatalf("truncated segment got %v, want a SegmentTruncatedError", err)
	}

	// A missing file is a stale manifest.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	var stale *ManifestStaleError
	if _, err := Verify(dir); !errors.As(err, &stale) {
		t.Fatalf("missing segment got %v, want a ManifestStaleError", err)
	}
}

func TestDeltaOrphanDetection(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := testCollections(5)
	if _, err := s.Checkpoint(1, r1, r2); err != nil {
		t.Fatal(err)
	}
	// A delta-looking file the manifest does not reference is an orphan
	// (crash between segment publish and manifest publish).
	orphan := deltaPrefix + "999999" + deltaSuffix
	if err := os.WriteFile(filepath.Join(dir, orphan), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range info.Orphans {
		if o == orphan {
			found = true
		}
	}
	if !found {
		t.Fatalf("orphan %s not detected (orphans: %v)", orphan, info.Orphans)
	}
	removed, err := Prune(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || !strings.HasPrefix(removed[0], deltaPrefix) {
		t.Fatalf("prune removed %v, want the delta orphan", removed)
	}
}
