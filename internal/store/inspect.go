package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dimm/internal/rrset"
)

// Info is a read-only summary of a store directory, cheap to compute
// (manifest plus a directory listing, no segment reads).
type Info struct {
	Dir         string
	Fingerprint Fingerprint
	Epochs      []EpochRecord
	// R1Sets/R2Sets are the manifest's total RR sets per collection.
	R1Sets, R2Sets int
	// Bytes is the summed size of published segments.
	Bytes int64
	// Sketch is the fast tier's published sketch segment, nil when the
	// store holds none.
	Sketch *SketchRecord
	// Deltas are the graph-update batches a dynamic service applied,
	// in sequence order; non-empty marks the store unrestorable (the RR
	// segments predate the in-place repairs the deltas drove).
	Deltas []DeltaRecord
	// RepairedSets sums Deltas' repaired counts.
	RepairedSets int
	// Orphans are segment-looking files in the directory the manifest
	// does not reference — debris from a crash between segment publish
	// and manifest publish. Harmless, removable with Prune.
	Orphans []string
}

// Inspect summarizes the store at dir without reading segment payloads.
func Inspect(dir string) (*Info, error) {
	man, err := readManifest(dir)
	if os.IsNotExist(err) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, err
	}
	info := &Info{Dir: dir, Fingerprint: man.Fingerprint, Epochs: man.Epochs, Sketch: man.Sketch, Deltas: man.Deltas}
	referenced := make(map[string]bool, len(man.Epochs)+len(man.Deltas)+1)
	for _, e := range man.Epochs {
		info.R1Sets += e.R1Sets
		info.R2Sets += e.R2Sets
		info.Bytes += e.Bytes
		referenced[e.File] = true
	}
	if man.Sketch != nil {
		info.Bytes += man.Sketch.Bytes
		referenced[man.Sketch.File] = true
	}
	for _, d := range man.Deltas {
		info.RepairedSets += d.Repaired
		info.Bytes += d.Bytes
		referenced[d.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || referenced[name] {
			continue
		}
		if strings.HasPrefix(name, segPrefix) || strings.HasPrefix(name, sketchPrefix) ||
			strings.HasPrefix(name, deltaPrefix) || strings.Contains(name, ".tmp-") {
			info.Orphans = append(info.Orphans, name)
		}
	}
	return info, nil
}

// Verify reads every published segment end to end — size, CRC32C,
// header consistency, full wire decode — and returns the first typed
// error found, or nil when the store would restore cleanly.
func Verify(dir string) (*Info, error) {
	info, err := Inspect(dir)
	if err != nil {
		return nil, err
	}
	for _, rec := range info.Epochs {
		if err := readSegment(filepath.Join(dir, rec.File), rec, nil, nil); err != nil {
			return info, err
		}
	}
	if info.Sketch != nil {
		if err := verifySketch(dir, info.Sketch); err != nil {
			return info, err
		}
	}
	for _, rec := range info.Deltas {
		if _, err := readDelta(filepath.Join(dir, rec.File), rec); err != nil {
			return info, err
		}
	}
	return info, nil
}

// Prune deletes orphan segment and temp files the manifest does not
// reference, returning their names. Published segments are never
// touched.
func Prune(dir string) ([]string, error) {
	info, err := Inspect(dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, name := range info.Orphans {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return removed, fmt.Errorf("store: pruning %s: %w", name, err)
		}
		removed = append(removed, name)
	}
	return removed, nil
}

// Compact merges all published segments into a single one labeled with
// the newest epoch, then publishes a one-row manifest. Restore output is
// unchanged (same sets, same order); what changes is startup I/O — one
// sequential read instead of many. No-op when the store holds one
// segment or fewer. Old segments are removed only after the new manifest
// is durable, so a crash mid-compact leaves a restorable store plus
// orphans.
func Compact(dir string) error {
	man, err := readManifest(dir)
	if os.IsNotExist(err) {
		return ErrNoCheckpoint
	}
	if err != nil {
		return err
	}
	if len(man.Epochs) <= 1 {
		return nil
	}
	r1 := rrset.NewCollection(0)
	r2 := rrset.NewCollection(0)
	for _, rec := range man.Epochs {
		if err := readSegment(filepath.Join(dir, rec.File), rec, r1, r2); err != nil {
			return err
		}
	}
	last := man.Epochs[len(man.Epochs)-1]
	name := fmt.Sprintf("%s%06d%s", segPrefix, man.NextSeg, segSuffix)
	rec, err := writeSegment(filepath.Join(dir, name), last.Epoch, r1, 0, r2, 0)
	if err != nil {
		return err
	}
	rec.File = name
	old := man.Epochs
	man.NextSeg++
	man.Epochs = []EpochRecord{rec}
	if err := writeManifest(dir, *man); err != nil {
		os.Remove(filepath.Join(dir, name))
		return err
	}
	for _, e := range old {
		os.Remove(filepath.Join(dir, e.File))
	}
	return nil
}
