package store

import (
	"errors"
	"os"

	"dimm/internal/rrset"
)

// Restored is a checkpoint materialized back into serving form: the two
// RR collections plus their inverted indexes, ready to answer queries
// with zero worker traffic.
type Restored struct {
	R1, R2     *rrset.Collection
	Idx1, Idx2 *rrset.Index
	// Epoch is the growth epoch the newest segment completed; a
	// restoring service resumes from it.
	Epoch uint64
	// Epochs is how many segments were replayed.
	Epochs int
	// Bytes is the total segment bytes read.
	Bytes int64
}

// Restore replays every stored segment in order and rebuilds the
// collections and inverted indexes for an n-node graph. It returns
// ErrNoCheckpoint when the store is empty, and the typed corruption or
// staleness error of the first bad segment otherwise — a partially
// corrupt store restores nothing.
func (s *Store) Restore(n int) (*Restored, error) {
	if len(s.man.Epochs) == 0 {
		return nil, ErrNoCheckpoint
	}
	if len(s.man.Deltas) > 0 {
		return nil, ErrDynamicHistory
	}
	r1 := rrset.NewCollection(0)
	r2 := rrset.NewCollection(0)
	var bytes int64
	for _, rec := range s.man.Epochs {
		if err := readSegment(s.segPath(rec.File), rec, r1, r2); err != nil {
			return nil, err
		}
		bytes += rec.Bytes
	}
	if r1.Count() != s.r1Stored || r2.Count() != s.r2Stored {
		return nil, &ManifestStaleError{Dir: s.dir, Reason: "replayed set counts disagree with the manifest totals"}
	}
	idx1, err := rrset.BuildIndex(r1, n)
	if err != nil {
		return nil, err
	}
	idx2, err := rrset.BuildIndex(r2, n)
	if err != nil {
		return nil, err
	}
	return &Restored{
		R1: r1, R2: r2, Idx1: idx1, Idx2: idx2,
		Epoch:  s.LastEpoch(),
		Epochs: len(s.man.Epochs),
		Bytes:  bytes,
	}, nil
}

// Restore is the one-shot form: open the store at dir, verify it was
// produced under fp, and materialize it for an n-node graph. A missing
// directory restores nothing (ErrNoCheckpoint), matching a first boot
// with -restore enabled.
func Restore(dir string, fp Fingerprint, n int) (*Restored, error) {
	if _, err := os.Stat(dir); errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	s, err := Open(dir, fp)
	if err != nil {
		return nil, err
	}
	return s.Restore(n)
}
