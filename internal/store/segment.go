package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"dimm/internal/checksum"
	"dimm/internal/rrset"
)

// Segment file layout (all little-endian):
//
//	offset  size  field
//	0       4     magic "DSEG" (0x47455344)
//	4       4     format version (1)
//	8       8     growth epoch this segment completes
//	16      4     R1 RR sets in the payload
//	20      4     R2 RR sets in the payload
//	24      8     payload length in bytes
//	32      ...   payload: R1 batch then R2 batch, AppendWireRange layout
//	32+len  4     CRC32C over header + payload
const (
	segMagic      = 0x47455344 // "DSEG"
	segVersion    = 1
	segHeaderSize = 32
	segFooterSize = 4
)

// writeSegment seals the RR sets r1[from1:] and r2[from2:] into one
// segment file at path, durably (write temp + fsync + rename), and
// returns its manifest record with File left blank for the caller to
// fill in.
func writeSegment(path string, epoch uint64, r1 *rrset.Collection, from1 int, r2 *rrset.Collection, from2 int) (EpochRecord, error) {
	n1 := r1.Count() - from1
	n2 := r2.Count() - from2
	payload := int64(r1.WireSizeRange(from1) + r2.WireSizeRange(from2))
	buf := make([]byte, segHeaderSize, segHeaderSize+int(payload)+segFooterSize)
	binary.LittleEndian.PutUint32(buf[0:], segMagic)
	binary.LittleEndian.PutUint32(buf[4:], segVersion)
	binary.LittleEndian.PutUint64(buf[8:], epoch)
	binary.LittleEndian.PutUint32(buf[16:], uint32(n1))
	binary.LittleEndian.PutUint32(buf[20:], uint32(n2))
	binary.LittleEndian.PutUint64(buf[24:], uint64(payload))
	buf = r1.AppendWireRange(buf, from1)
	buf = r2.AppendWireRange(buf, from2)
	crc := checksum.Sum(buf)
	var footer [segFooterSize]byte
	binary.LittleEndian.PutUint32(footer[:], crc)
	buf = append(buf, footer[:]...)

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return EpochRecord{}, fmt.Errorf("store: staging segment: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return EpochRecord{}, fmt.Errorf("store: writing segment %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return EpochRecord{}, fmt.Errorf("store: closing segment %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return EpochRecord{}, fmt.Errorf("store: publishing segment %s: %w", path, err)
	}
	return EpochRecord{
		Epoch:  epoch,
		R1Sets: n1,
		R2Sets: n2,
		Bytes:  int64(len(buf)),
		CRC:    crc,
	}, nil
}

// readSegment loads the segment rec points at and appends its payload to
// r1/r2 (either may be nil to verify without materializing). Checks run
// from cheapest to most specific: manifest-vs-file size first (the
// truncation signal), then the CRC32C footer (any flipped bit), then
// header consistency against the manifest (stale manifest), and finally
// the wire decode itself.
func readSegment(path string, rec EpochRecord, r1, r2 *rrset.Collection) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &ManifestStaleError{Dir: filepath.Dir(path), Reason: fmt.Sprintf("segment %s listed in the manifest is missing", rec.File)}
	}
	if err != nil {
		return fmt.Errorf("store: reading segment %s: %w", path, err)
	}
	if int64(len(data)) != rec.Bytes {
		return &SegmentTruncatedError{Path: path, WantBytes: rec.Bytes, GotBytes: int64(len(data))}
	}
	if len(data) < segHeaderSize+segFooterSize {
		return &SegmentTruncatedError{Path: path, WantBytes: segHeaderSize + segFooterSize, GotBytes: int64(len(data))}
	}
	body := data[:len(data)-segFooterSize]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-segFooterSize:])
	if got := checksum.Sum(body); got != wantCRC {
		return &SegmentChecksumError{Path: path, Want: wantCRC, Got: got}
	}
	if magic := binary.LittleEndian.Uint32(body[0:]); magic != segMagic {
		return &CorruptSegmentError{Path: path, Reason: fmt.Sprintf("bad magic %#x", magic)}
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != segVersion {
		return &CorruptSegmentError{Path: path, Reason: fmt.Sprintf("segment version %d, this build reads %d", v, segVersion)}
	}
	epoch := binary.LittleEndian.Uint64(body[8:])
	n1 := int(binary.LittleEndian.Uint32(body[16:]))
	n2 := int(binary.LittleEndian.Uint32(body[20:]))
	payloadLen := binary.LittleEndian.Uint64(body[24:])
	if epoch != rec.Epoch || n1 != rec.R1Sets || n2 != rec.R2Sets {
		return &ManifestStaleError{Dir: filepath.Dir(path), Reason: fmt.Sprintf(
			"segment %s holds epoch %d with %d+%d RR sets, manifest recorded epoch %d with %d+%d",
			rec.File, epoch, n1, n2, rec.Epoch, rec.R1Sets, rec.R2Sets)}
	}
	if int(payloadLen) != len(body)-segHeaderSize {
		return &CorruptSegmentError{Path: path, Reason: fmt.Sprintf(
			"declared payload %d bytes, file holds %d", payloadLen, len(body)-segHeaderSize)}
	}
	payload := body[segHeaderSize:]
	if r1 == nil {
		r1 = rrset.NewCollection(0)
	}
	got1, rest, err := rrset.DecodeWire(payload, r1)
	if err != nil {
		return &CorruptSegmentError{Path: path, Reason: err.Error()}
	}
	if r2 == nil {
		r2 = rrset.NewCollection(0)
	}
	got2, rest, err2 := rrset.DecodeWire(rest, r2)
	if err2 != nil {
		return &CorruptSegmentError{Path: path, Reason: err2.Error()}
	}
	if got1 != n1 || got2 != n2 || len(rest) != 0 {
		return &CorruptSegmentError{Path: path, Reason: fmt.Sprintf(
			"payload decodes to %d+%d RR sets with %d trailing bytes, header declared %d+%d",
			got1, got2, len(rest), n1, n2)}
	}
	return nil
}
