package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dimm/internal/checksum"
	"dimm/internal/sketch"
)

// The sketch tier persists as its own segment kind next to the RR
// segments: one sketch-NNNNNN.sk file holding the full encoded sketch
// set (internal/sketch wire format, header + CRC32C footer), referenced
// by a single manifest record. Unlike RR segments the sketch is
// replaced, not appended — a bottom-k sketch absorbs growth in place,
// so the newest file supersedes all earlier ones — but the publish
// discipline is identical: temp + fsync + rename, manifest is the
// authority, the superseded file is removed only after the new manifest
// is durable.
const (
	sketchPrefix = "sketch-"
	sketchSuffix = ".sk"
)

// ErrNoSketch reports that the store holds no sketch checkpoint. A
// restoring service treats it as "rebuild from the RR sample", not as a
// failure.
var ErrNoSketch = errors.New("store: no sketch checkpoint")

// SketchRecord is the manifest's sketch row: the published sketch file
// and the configuration it was built under.
type SketchRecord struct {
	// Epoch is the growth epoch the sketch was built through; it matches
	// an RR epoch record so restore can tell whether the sketch is
	// current or lags the sample.
	Epoch uint64 `json:"epoch"`
	// File is the sketch file's name within the store directory.
	File string `json:"file"`
	// K and Seed pin the sketch configuration (sketch.Params).
	K    int    `json:"k"`
	Seed uint64 `json:"seed"`
	// Theta is how many RR instances the sketch absorbed.
	Theta int64 `json:"theta"`
	// Bytes is the file size; CRC duplicates its CRC32C footer.
	Bytes int64  `json:"bytes"`
	CRC   uint32 `json:"crc"`
}

// Sketch returns the manifest's sketch record, nil when none is
// published.
func (s *Store) Sketch() *SketchRecord { return s.man.Sketch }

// CheckpointSketch publishes the sketch set as the store's sketch
// segment for the given growth epoch, atomically superseding any
// previous one. A sketch already stored at the same epoch and theta is
// a no-op. Returns the bytes written.
func (s *Store) CheckpointSketch(epoch uint64, sk *sketch.Set) (int64, error) {
	if sk == nil {
		return 0, fmt.Errorf("store: checkpointing a nil sketch")
	}
	if old := s.man.Sketch; old != nil && old.Epoch == epoch && old.Theta == sk.Theta() {
		return 0, nil
	}
	data := sk.Encode()
	name := fmt.Sprintf("%s%06d%s", sketchPrefix, s.man.NextSeg, sketchSuffix)
	path := filepath.Join(s.dir, name)
	if err := writeFileDurable(path, data); err != nil {
		return 0, err
	}
	man := s.man
	man.NextSeg++
	man.Sketch = &SketchRecord{
		Epoch: epoch,
		File:  name,
		K:     sk.K(),
		Seed:  sk.Seed(),
		Theta: sk.Theta(),
		Bytes: int64(len(data)),
		CRC:   checksum.Sum(data[:len(data)-4]),
	}
	old := s.man.Sketch
	if err := writeManifest(s.dir, man); err != nil {
		os.Remove(path) // unpublished; do not leave an orphan
		return 0, err
	}
	s.man = man
	if old != nil {
		os.Remove(filepath.Join(s.dir, old.File))
	}
	return int64(len(data)), nil
}

// RestoreSketch materializes the stored sketch for an n-node graph,
// running the same check ladder as RR segments: manifest-vs-file size
// (truncation), CRC32C (any flipped bit), wire decode (structure), and
// finally the configuration recorded in the manifest (staleness). The
// caller still owns the decision of whether the sketch's K/Seed match
// its own configuration — sketch.Set.Verify does that.
func (s *Store) RestoreSketch(n int) (*sketch.Set, *SketchRecord, error) {
	rec := s.man.Sketch
	if rec == nil {
		return nil, nil, ErrNoSketch
	}
	path := filepath.Join(s.dir, rec.File)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil, &ManifestStaleError{Dir: s.dir, Reason: fmt.Sprintf("sketch file %s listed in the manifest is missing", rec.File)}
	}
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading sketch %s: %w", path, err)
	}
	if int64(len(data)) != rec.Bytes {
		return nil, nil, &SegmentTruncatedError{Path: path, WantBytes: rec.Bytes, GotBytes: int64(len(data))}
	}
	if len(data) < 4 {
		return nil, nil, &SegmentTruncatedError{Path: path, WantBytes: 4, GotBytes: int64(len(data))}
	}
	if got := checksum.Sum(data[:len(data)-4]); got != rec.CRC {
		return nil, nil, &SegmentChecksumError{Path: path, Want: rec.CRC, Got: got}
	}
	sk, err := sketch.Decode(data)
	if err != nil {
		return nil, nil, err // sketch's own typed corruption errors
	}
	if sk.N() != n {
		return nil, nil, &FingerprintMismatchError{Field: "sketch_nodes", Want: fmt.Sprint(sk.N()), Got: fmt.Sprint(n)}
	}
	if sk.K() != rec.K || sk.Seed() != rec.Seed || sk.Theta() != rec.Theta {
		return nil, nil, &ManifestStaleError{Dir: s.dir, Reason: fmt.Sprintf(
			"sketch file holds k=%d seed=%d theta=%d, manifest recorded k=%d seed=%d theta=%d",
			sk.K(), sk.Seed(), sk.Theta(), rec.K, rec.Seed, rec.Theta)}
	}
	return sk, rec, nil
}

// verifySketch re-reads the published sketch end to end; nil when it
// would restore cleanly (modulo the graph-size check, which needs a
// configuration). Used by Verify/cmd/dimmstore.
func verifySketch(dir string, rec *SketchRecord) error {
	path := filepath.Join(dir, rec.File)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &ManifestStaleError{Dir: dir, Reason: fmt.Sprintf("sketch file %s listed in the manifest is missing", rec.File)}
	}
	if err != nil {
		return fmt.Errorf("store: reading sketch %s: %w", path, err)
	}
	if int64(len(data)) != rec.Bytes {
		return &SegmentTruncatedError{Path: path, WantBytes: rec.Bytes, GotBytes: int64(len(data))}
	}
	sk, err := sketch.Decode(data)
	if err != nil {
		return err
	}
	if err := sk.Verify(sk.N(), sketch.Params{K: rec.K, Seed: rec.Seed}); err != nil {
		return err
	}
	return nil
}

// writeFileDurable writes data to path via temp + fsync + rename, the
// same publish discipline as RR segments.
func writeFileDurable(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: staging %s: %w", path, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publishing %s: %w", path, err)
	}
	return nil
}
