package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dimm/internal/sketch"
)

func testSketch(t *testing.T, sets int) *sketch.Set {
	t.Helper()
	r1, _ := testCollections(sets)
	sk, err := sketch.New(100, sketch.Params{K: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sk.Absorb(r1.Snapshot(), 2)
	return sk
}

func TestSketchCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := testCollections(40)
	if _, err := st.Checkpoint(1, r1, r2); err != nil {
		t.Fatal(err)
	}
	sk := testSketch(t, 40)
	n, err := st.CheckpointSketch(1, sk)
	if err != nil || n <= 0 {
		t.Fatalf("CheckpointSketch = %d, %v", n, err)
	}
	// Same epoch + theta again: no-op, no new file.
	if n, err := st.CheckpointSketch(1, sk); err != nil || n != 0 {
		t.Fatalf("repeat CheckpointSketch = %d, %v; want 0-byte no-op", n, err)
	}

	// A fresh Open sees the record and restores byte-identically.
	st2, err := Open(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Sketch()
	if rec == nil || rec.Epoch != 1 || rec.K != 8 || rec.Theta != sk.Theta() {
		t.Fatalf("sketch record %+v", rec)
	}
	got, rec2, err := st2.RestoreSketch(100)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.File != rec.File {
		t.Fatalf("restore read %s, record says %s", rec2.File, rec.File)
	}
	if !bytes.Equal(got.Encode(), sk.Encode()) {
		t.Fatal("restored sketch is not byte-identical")
	}
	// Wrong node-space: typed fingerprint mismatch.
	var fm *FingerprintMismatchError
	if _, _, err := st2.RestoreSketch(101); !errors.As(err, &fm) || fm.Field != "sketch_nodes" {
		t.Fatalf("want sketch_nodes mismatch, got %v", err)
	}

	// Growth epoch supersedes: the old file is gone, the new one serves.
	r1b, r2b := testCollections(80)
	if _, err := st2.Checkpoint(2, r1b, r2b); err != nil {
		t.Fatal(err)
	}
	sk2 := testSketch(t, 80)
	if _, err := st2.CheckpointSketch(2, sk2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, rec.File)); !os.IsNotExist(err) {
		t.Fatalf("superseded sketch file %s still present (err=%v)", rec.File, err)
	}
	got2, _, err := st2.RestoreSketch(100)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Theta() != sk2.Theta() || !bytes.Equal(got2.Encode(), sk2.Encode()) {
		t.Fatal("restore after supersede returned the wrong sketch")
	}
}

// TestSketchCorruptionMatrix drives the store-level corruption ladder:
// truncation, bit flip and staleness each surface as their own typed
// error, matching the RR segment conventions.
func TestSketchCorruptionMatrix(t *testing.T) {
	setup := func(t *testing.T) (string, *Store, *SketchRecord) {
		dir := t.TempDir()
		st, err := Open(dir, testFingerprint())
		if err != nil {
			t.Fatal(err)
		}
		r1, r2 := testCollections(30)
		if _, err := st.Checkpoint(1, r1, r2); err != nil {
			t.Fatal(err)
		}
		if _, err := st.CheckpointSketch(1, testSketch(t, 30)); err != nil {
			t.Fatal(err)
		}
		return dir, st, st.Sketch()
	}

	t.Run("truncation", func(t *testing.T) {
		dir, st, rec := setup(t)
		path := filepath.Join(dir, rec.File)
		data, _ := os.ReadFile(path)
		if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		var te *SegmentTruncatedError
		if _, _, err := st.RestoreSketch(100); !errors.As(err, &te) {
			t.Fatalf("want *SegmentTruncatedError, got %v", err)
		}
		if _, err := Verify(dir); !errors.As(err, &te) {
			t.Fatalf("Verify: want *SegmentTruncatedError, got %v", err)
		}
	})

	t.Run("bit flip", func(t *testing.T) {
		dir, st, rec := setup(t)
		path := filepath.Join(dir, rec.File)
		data, _ := os.ReadFile(path)
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var ce *SegmentChecksumError
		if _, _, err := st.RestoreSketch(100); !errors.As(err, &ce) {
			t.Fatalf("want *SegmentChecksumError, got %v", err)
		}
	})

	t.Run("missing file", func(t *testing.T) {
		dir, st, rec := setup(t)
		if err := os.Remove(filepath.Join(dir, rec.File)); err != nil {
			t.Fatal(err)
		}
		var ms *ManifestStaleError
		if _, _, err := st.RestoreSketch(100); !errors.As(err, &ms) {
			t.Fatalf("want *ManifestStaleError, got %v", err)
		}
	})

	t.Run("no sketch", func(t *testing.T) {
		dir := t.TempDir()
		st, err := Open(dir, testFingerprint())
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.RestoreSketch(100); !errors.Is(err, ErrNoSketch) {
			t.Fatalf("want ErrNoSketch, got %v", err)
		}
	})
}

func TestSketchInspectPruneCompact(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := testCollections(20)
	if _, err := st.Checkpoint(1, r1, r2); err != nil {
		t.Fatal(err)
	}
	r1b, r2b := testCollections(50)
	if _, err := st.Checkpoint(2, r1b, r2b); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CheckpointSketch(2, testSketch(t, 50)); err != nil {
		t.Fatal(err)
	}

	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Sketch == nil || info.Sketch.Epoch != 2 {
		t.Fatalf("Inspect lost the sketch record: %+v", info.Sketch)
	}
	if len(info.Orphans) != 0 {
		t.Fatalf("published sketch misread as orphan: %v", info.Orphans)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatal(err)
	}

	// An unreferenced sketch-looking file is an orphan and prunable; the
	// published one survives.
	orphan := filepath.Join(dir, sketchPrefix+"999999"+sketchSuffix)
	if err := os.WriteFile(orphan, []byte("debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := Prune(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || !strings.HasPrefix(removed[0], sketchPrefix) {
		t.Fatalf("Prune removed %v", removed)
	}
	if _, _, err := st.RestoreSketch(100); err != nil {
		t.Fatalf("published sketch lost to prune: %v", err)
	}

	// Compact merges RR segments but must carry the sketch record along.
	if err := Compact(dir); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, testFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Sketch() == nil {
		t.Fatal("Compact dropped the sketch record")
	}
	if _, _, err := st2.RestoreSketch(100); err != nil {
		t.Fatalf("restore after compact: %v", err)
	}
}
