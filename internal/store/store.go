// Package store is the durable RR-sample store: a segmented on-disk
// checkpoint format for the resident query service's R1/R2 collections,
// so a restart or deploy pays seconds of sequential I/O instead of
// minutes of distributed resampling. The paper's sample is a pure
// function of (graph, weight model, sampler seeds, machine count,
// parallelism, growth epoch), so persisting and restoring it introduces
// no new randomness and leaves the (1 − 1/e − ε) guarantee untouched —
// see DESIGN.md, "Why restore preserves the guarantee".
//
// On-disk layout, one directory per store:
//
//	manifest.json   segment list + validity fingerprint (atomic replace)
//	seg-000000.rr   one segment per checkpointed growth epoch
//	seg-000001.rr   ...
//
// Each segment holds the RR sets both collections gained in one growth
// epoch, in the existing little-endian wire layout
// (rrset.Collection.AppendWireRange), between a fixed header (magic,
// version, epoch, set counts, payload length) and a CRC32C footer. The
// manifest is the authority: it is written via temp file + fsync +
// rename, so a crash mid-checkpoint leaves the previous manifest intact
// and at worst an orphan segment file (cmd/dimmstore prune removes
// those).
//
// Checkpointing is incremental in the same sense as rrset.Index.
// AppendFrom: a Checkpoint call appends only the sets generated since
// the previous one, never rewriting published segments. Restore rejects
// any mismatch — wrong fingerprint, flipped bit, truncated file, stale
// manifest — with a distinct typed error rather than silently serving a
// sample the certificates were not computed for.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dimm/internal/rrset"
)

const (
	manifestName    = "manifest.json"
	manifestVersion = 1
	segPrefix       = "seg-"
	segSuffix       = ".rr"
)

// Fingerprint pins a checkpoint to the exact sampling configuration
// that produced it. Restoring under any other configuration would serve
// answers whose certificates were computed for a different distribution,
// so every field must match bit-for-bit.
type Fingerprint struct {
	// GraphHash is graph.ContentHash() of the substrate: SHA-256 over
	// the CSR arrays and edge weights, so it covers both topology and
	// the weight assignment.
	GraphHash string `json:"graph_hash"`
	// Model is the diffusion model ("ic" or "lt").
	Model string `json:"model"`
	// WeightModel optionally names the weight assignment ("wc", ...);
	// GraphHash already covers the actual weights, this is a
	// human-readable guard for tooling.
	WeightModel string `json:"weight_model,omitempty"`
	// Subset records whether SUBSIM subset sampling was used.
	Subset bool `json:"subset"`
	// Seed, Machines and Parallelism determine the workers' RR streams:
	// the sample is a deterministic function of them.
	Seed        uint64 `json:"seed"`
	Machines    int    `json:"machines"`
	Parallelism int    `json:"parallelism"`
	// KMax and EpsFloor are the admissibility envelope the resident
	// sample was budgeted for (core.PlanResidentSample); a store warmed
	// for one envelope must not back a service promising another.
	KMax     int     `json:"k_max"`
	EpsFloor float64 `json:"eps_floor"`
}

// diff returns a typed mismatch error naming the first differing field,
// with f as the stored ("want") side, or nil if the fingerprints match.
func (f Fingerprint) diff(got Fingerprint) *FingerprintMismatchError {
	mk := func(field string, want, got any) *FingerprintMismatchError {
		return &FingerprintMismatchError{Field: field, Want: fmt.Sprint(want), Got: fmt.Sprint(got)}
	}
	switch {
	case f.GraphHash != got.GraphHash:
		return mk("graph_hash", f.GraphHash, got.GraphHash)
	case f.Model != got.Model:
		return mk("model", f.Model, got.Model)
	case f.WeightModel != got.WeightModel:
		return mk("weight_model", f.WeightModel, got.WeightModel)
	case f.Subset != got.Subset:
		return mk("subset", f.Subset, got.Subset)
	case f.Seed != got.Seed:
		return mk("seed", f.Seed, got.Seed)
	case f.Machines != got.Machines:
		return mk("machines", f.Machines, got.Machines)
	case f.Parallelism != got.Parallelism:
		return mk("parallelism", f.Parallelism, got.Parallelism)
	case f.KMax != got.KMax:
		return mk("k_max", f.KMax, got.KMax)
	case f.EpsFloor != got.EpsFloor:
		return mk("eps_floor", f.EpsFloor, got.EpsFloor)
	}
	return nil
}

// ErrNoCheckpoint reports that the directory holds nothing restorable:
// no manifest, or a manifest with zero epochs. Callers typically treat
// it as "cold start" rather than as a failure.
var ErrNoCheckpoint = errors.New("store: no checkpoint to restore")

// FingerprintMismatchError reports a checkpoint produced under a
// different sampling configuration than the one trying to use it.
type FingerprintMismatchError struct {
	Field     string // the first mismatching Fingerprint field
	Want, Got string // stored value vs. offered value
}

func (e *FingerprintMismatchError) Error() string {
	return fmt.Sprintf("store: fingerprint mismatch on %s: checkpoint has %s, configuration has %s",
		e.Field, e.Want, e.Got)
}

// SegmentChecksumError reports a segment whose CRC32C footer does not
// match its bytes — a flipped bit anywhere in the file.
type SegmentChecksumError struct {
	Path      string
	Want, Got uint32
}

func (e *SegmentChecksumError) Error() string {
	return fmt.Sprintf("store: segment %s failed its CRC32C check (footer %#x, computed %#x)",
		e.Path, e.Want, e.Got)
}

// SegmentTruncatedError reports a segment file whose size differs from
// what the manifest recorded — an interrupted or clipped write.
type SegmentTruncatedError struct {
	Path                string
	WantBytes, GotBytes int64
}

func (e *SegmentTruncatedError) Error() string {
	return fmt.Sprintf("store: segment %s is %d bytes, manifest recorded %d",
		e.Path, e.GotBytes, e.WantBytes)
}

// ManifestStaleError reports a manifest that disagrees with the
// directory or the segment contents (missing segment file, set counts
// that do not add up, non-monotone epochs, unparseable JSON).
type ManifestStaleError struct {
	Dir    string
	Reason string
}

func (e *ManifestStaleError) Error() string {
	return fmt.Sprintf("store: stale manifest in %s: %s", e.Dir, e.Reason)
}

// CorruptSegmentError reports a segment whose header is internally
// inconsistent even though its checksum verified (wrong magic or
// version — usually a foreign file renamed into the store).
type CorruptSegmentError struct {
	Path   string
	Reason string
}

func (e *CorruptSegmentError) Error() string {
	return fmt.Sprintf("store: corrupt segment %s: %s", e.Path, e.Reason)
}

// EpochRecord is one manifest row: a published segment and what it
// holds.
type EpochRecord struct {
	// Epoch is the resident sample's growth epoch the segment completes.
	Epoch uint64 `json:"epoch"`
	// File is the segment's name within the store directory.
	File string `json:"file"`
	// R1Sets/R2Sets are how many RR sets the segment adds per collection.
	R1Sets int `json:"r1_sets"`
	R2Sets int `json:"r2_sets"`
	// Bytes is the full segment file size, footer included.
	Bytes int64 `json:"bytes"`
	// CRC duplicates the segment's CRC32C footer for cross-checking.
	CRC uint32 `json:"crc"`
}

// manifest is the JSON document published atomically after every
// checkpoint.
type manifest struct {
	Version     int         `json:"version"`
	Fingerprint Fingerprint `json:"fingerprint"`
	// NextSeg numbers segment files monotonically so compaction can
	// never collide with a later checkpoint's name.
	NextSeg int           `json:"next_seg"`
	Epochs  []EpochRecord `json:"epochs"`
	// Sketch optionally references the serving fast tier's bottom-k
	// sketch segment (see sketch.go). Absent in pre-sketch manifests,
	// which keep restoring unchanged.
	Sketch *SketchRecord `json:"sketch,omitempty"`
	// Deltas lists the graph-update batches a dynamic service applied
	// (see delta.go). Their presence marks the RR segments as predating
	// in-place repairs: Restore refuses with ErrDynamicHistory. Absent
	// in static stores, which keep restoring unchanged.
	Deltas []DeltaRecord `json:"deltas,omitempty"`
}

// Store is an open checkpoint directory. It is single-writer by design:
// the resident service's grower is the only caller of Checkpoint, and
// growth is already serialized by the service.
type Store struct {
	dir string
	man manifest

	r1Stored, r2Stored int // RR sets already on disk, per collection
}

// Open attaches to (or initializes) the store at dir for the given
// fingerprint. An existing manifest with a different fingerprint is
// rejected with a *FingerprintMismatchError — appending to it would fork
// an incompatible sample history.
func Open(dir string, fp Fingerprint) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	man, err := readManifest(dir)
	if errors.Is(err, os.ErrNotExist) {
		return &Store{dir: dir, man: manifest{Version: manifestVersion, Fingerprint: fp}}, nil
	}
	if err != nil {
		return nil, err
	}
	if d := man.Fingerprint.diff(fp); d != nil {
		return nil, d
	}
	s := &Store{dir: dir, man: *man}
	for _, e := range man.Epochs {
		s.r1Stored += e.R1Sets
		s.r2Stored += e.R2Sets
	}
	return s, nil
}

// Epochs returns how many segments the store holds.
func (s *Store) Epochs() int { return len(s.man.Epochs) }

// segPath resolves a manifest-recorded segment name to its path.
func (s *Store) segPath(name string) string { return filepath.Join(s.dir, name) }

// LastEpoch returns the growth epoch of the newest segment (0 when
// empty).
func (s *Store) LastEpoch() uint64 {
	if len(s.man.Epochs) == 0 {
		return 0
	}
	return s.man.Epochs[len(s.man.Epochs)-1].Epoch
}

// StoredSets returns how many RR sets are on disk per collection.
func (s *Store) StoredSets() (r1, r2 int) { return s.r1Stored, s.r2Stored }

// Fingerprint returns the configuration the store is pinned to.
func (s *Store) Fingerprint() Fingerprint { return s.man.Fingerprint }

// Checkpoint appends the RR sets the collections gained since the
// previous checkpoint as one new segment labeled epoch, then atomically
// publishes the updated manifest. Published segments are never
// rewritten, mirroring rrset.Index.AppendFrom. It returns the bytes
// written (0 when nothing is new). The caller must pass the same
// collections, in the same grown-only state, across the store's
// lifetime; a live sample shorter than the stored prefix is rejected as
// a stale manifest.
func (s *Store) Checkpoint(epoch uint64, r1, r2 *rrset.Collection) (int64, error) {
	from1, from2 := s.r1Stored, s.r2Stored
	if from1 > r1.Count() || from2 > r2.Count() {
		return 0, &ManifestStaleError{Dir: s.dir, Reason: fmt.Sprintf(
			"store holds %d+%d RR sets but the live collections hold only %d+%d",
			from1, from2, r1.Count(), r2.Count())}
	}
	if from1 == r1.Count() && from2 == r2.Count() {
		return 0, nil
	}
	if last := s.LastEpoch(); len(s.man.Epochs) > 0 && epoch <= last {
		return 0, fmt.Errorf("store: checkpoint epoch %d not after the stored epoch %d", epoch, last)
	}
	name := fmt.Sprintf("%s%06d%s", segPrefix, s.man.NextSeg, segSuffix)
	path := filepath.Join(s.dir, name)
	rec, err := writeSegment(path, epoch, r1, from1, r2, from2)
	if err != nil {
		return 0, err
	}
	rec.File = name
	man := s.man
	man.NextSeg++
	man.Epochs = append(append([]EpochRecord(nil), s.man.Epochs...), rec)
	if err := writeManifest(s.dir, man); err != nil {
		os.Remove(path) // unpublished segment; do not leave an orphan
		return 0, err
	}
	s.man = man
	s.r1Stored = r1.Count()
	s.r2Stored = r2.Count()
	return rec.Bytes, nil
}

// Checkpoint is the one-shot form: open (or initialize) the store at
// dir for fp and append everything the collections hold beyond what is
// already stored, as a single segment labeled epoch.
func Checkpoint(dir string, fp Fingerprint, epoch uint64, r1, r2 *rrset.Collection) (int64, error) {
	s, err := Open(dir, fp)
	if err != nil {
		return 0, err
	}
	return s.Checkpoint(epoch, r1, r2)
}

// readManifest loads and sanity-checks dir's manifest.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, &ManifestStaleError{Dir: dir, Reason: "unparseable JSON: " + err.Error()}
	}
	if man.Version != manifestVersion {
		return nil, &ManifestStaleError{Dir: dir, Reason: fmt.Sprintf("manifest version %d, this build reads %d", man.Version, manifestVersion)}
	}
	for i, e := range man.Epochs {
		if e.R1Sets < 0 || e.R2Sets < 0 || e.Bytes <= 0 || e.File == "" {
			return nil, &ManifestStaleError{Dir: dir, Reason: fmt.Sprintf("epoch record %d is malformed", i)}
		}
		if i > 0 && e.Epoch <= man.Epochs[i-1].Epoch {
			return nil, &ManifestStaleError{Dir: dir, Reason: fmt.Sprintf(
				"epochs not strictly increasing at record %d (%d after %d)", i, e.Epoch, man.Epochs[i-1].Epoch)}
		}
	}
	if sk := man.Sketch; sk != nil && (sk.File == "" || sk.Bytes <= 0 || sk.K < 2 || sk.Theta < 0) {
		return nil, &ManifestStaleError{Dir: dir, Reason: "sketch record is malformed"}
	}
	for i, d := range man.Deltas {
		if d.File == "" || d.Bytes <= 0 || d.Ops <= 0 || d.Repaired < 0 {
			return nil, &ManifestStaleError{Dir: dir, Reason: fmt.Sprintf("delta record %d is malformed", i)}
		}
		if i > 0 && d.Seq <= man.Deltas[i-1].Seq {
			return nil, &ManifestStaleError{Dir: dir, Reason: fmt.Sprintf(
				"delta seqs not strictly increasing at record %d (%d after %d)", i, d.Seq, man.Deltas[i-1].Seq)}
		}
	}
	return &man, nil
}

// writeManifest atomically replaces dir's manifest: write to a temp
// file, fsync it, rename over the old one, fsync the directory. A crash
// at any point leaves either the old or the new manifest, never a
// partial one.
func writeManifest(dir string, man manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, manifestName+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: staging manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: closing manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publishing manifest: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}
