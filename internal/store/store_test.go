package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dimm/internal/rrset"
)

func testFingerprint() Fingerprint {
	return Fingerprint{
		GraphHash:   "sha256:test",
		Model:       "ic",
		WeightModel: "wc",
		Seed:        42,
		Machines:    4,
		Parallelism: 2,
		KMax:        10,
		EpsFloor:    0.3,
	}
}

// testCollections builds two deterministic collections with sets RR
// sets each, shaped so R1 and R2 differ.
func testCollections(sets int) (*rrset.Collection, *rrset.Collection) {
	r1 := rrset.NewCollection(0)
	r2 := rrset.NewCollection(0)
	for i := 0; i < sets; i++ {
		m1 := make([]uint32, 1+i%5)
		for j := range m1 {
			m1[j] = uint32(i*7+j) % 100
		}
		r1.Append(m1, 0)
		m2 := make([]uint32, 1+(i+3)%4)
		for j := range m2 {
			m2[j] = uint32(i*13+j) % 100
		}
		r2.Append(m2, 0)
	}
	return r1, r2
}

func sameSets(t *testing.T, want, got *rrset.Collection, label string) {
	t.Helper()
	if want.Count() != got.Count() {
		t.Fatalf("%s: restored %d RR sets, want %d", label, got.Count(), want.Count())
	}
	for i := 0; i < want.Count(); i++ {
		w, g := want.Set(i), got.Set(i)
		if len(w) != len(g) {
			t.Fatalf("%s: set %d has %d members, want %d", label, i, len(g), len(w))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("%s: set %d member %d is %d, want %d", label, i, j, g[j], w[j])
			}
		}
	}
}

func TestRoundTripIncremental(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()
	r1, r2 := testCollections(20)

	s, err := Open(dir, fp)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	n, err := s.Checkpoint(1, r1, r2)
	if err != nil || n <= 0 {
		t.Fatalf("Checkpoint epoch 1: bytes=%d err=%v", n, err)
	}
	// Grow both collections, checkpoint again: only the suffix should
	// land in the second segment.
	r1.Append([]uint32{1, 2, 3}, 0)
	r2.Append([]uint32{4, 5}, 0)
	r2.Append([]uint32{6}, 0)
	n2, err := s.Checkpoint(2, r1, r2)
	if err != nil || n2 <= 0 {
		t.Fatalf("Checkpoint epoch 2: bytes=%d err=%v", n2, err)
	}
	if n2 >= n {
		t.Fatalf("incremental segment (%d bytes) not smaller than the initial one (%d)", n2, n)
	}
	// A third checkpoint with nothing new writes nothing.
	n3, err := s.Checkpoint(3, r1, r2)
	if err != nil || n3 != 0 {
		t.Fatalf("no-op checkpoint: bytes=%d err=%v", n3, err)
	}
	if s.Epochs() != 2 {
		t.Fatalf("store holds %d epochs, want 2", s.Epochs())
	}

	res, err := Restore(dir, fp, 100)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if res.Epoch != 2 || res.Epochs != 2 {
		t.Fatalf("restored epoch=%d segments=%d, want 2/2", res.Epoch, res.Epochs)
	}
	sameSets(t, r1, res.R1, "R1")
	sameSets(t, r2, res.R2, "R2")
	if res.Idx1 == nil || res.Idx2 == nil {
		t.Fatal("restore did not build inverted indexes")
	}
}

func TestRestoreEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, err := Restore(dir, testFingerprint(), 10); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: got %v, want ErrNoCheckpoint", err)
	}
	if _, err := Restore(filepath.Join(dir, "missing"), testFingerprint(), 10); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: got %v, want ErrNoCheckpoint", err)
	}
	// Open on an empty dir succeeds; Restore on it reports no checkpoint.
	s, err := Open(dir, testFingerprint())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.Restore(10); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Store.Restore on empty store: got %v, want ErrNoCheckpoint", err)
	}
}

// seedStore writes a two-epoch store and returns its fingerprint.
func seedStore(t *testing.T, dir string) Fingerprint {
	t.Helper()
	fp := testFingerprint()
	r1, r2 := testCollections(15)
	s, err := Open(dir, fp)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.Checkpoint(1, r1, r2); err != nil {
		t.Fatalf("Checkpoint 1: %v", err)
	}
	r1.Append([]uint32{9, 8, 7}, 0)
	if _, err := s.Checkpoint(2, r1, r2); err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	return fp
}

func TestFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	fp := seedStore(t, dir)

	cases := []struct {
		field  string
		mutate func(*Fingerprint)
	}{
		{"graph_hash", func(f *Fingerprint) { f.GraphHash = "sha256:other" }},
		{"model", func(f *Fingerprint) { f.Model = "lt" }},
		{"seed", func(f *Fingerprint) { f.Seed = 43 }},
		{"machines", func(f *Fingerprint) { f.Machines = 8 }},
		{"parallelism", func(f *Fingerprint) { f.Parallelism = 4 }},
		{"k_max", func(f *Fingerprint) { f.KMax = 20 }},
		{"eps_floor", func(f *Fingerprint) { f.EpsFloor = 0.1 }},
	}
	for _, tc := range cases {
		bad := fp
		tc.mutate(&bad)
		_, err := Restore(dir, bad, 100)
		var fe *FingerprintMismatchError
		if !errors.As(err, &fe) {
			t.Fatalf("%s mutation: got %v, want FingerprintMismatchError", tc.field, err)
		}
		if fe.Field != tc.field {
			t.Fatalf("mutated %s but error names %s", tc.field, fe.Field)
		}
		// Open must refuse too — appending under the wrong config would
		// fork the sample history.
		if _, err := Open(dir, bad); !errors.As(err, &fe) {
			t.Fatalf("Open with mutated %s: got %v, want FingerprintMismatchError", tc.field, err)
		}
	}
	// The matching fingerprint still restores.
	if _, err := Restore(dir, fp, 100); err != nil {
		t.Fatalf("Restore with matching fingerprint: %v", err)
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files in %s (err=%v)", dir, err)
	}
	return matches
}

func TestBitFlipFailsRestore(t *testing.T) {
	dir := t.TempDir()
	fp := seedStore(t, dir)
	seg := segFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Restore(dir, fp, 100)
	var ce *SegmentChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("bit flip: got %v, want SegmentChecksumError", err)
	}
	if _, err := Verify(dir); !errors.As(err, &ce) {
		t.Fatalf("Verify after bit flip: got %v, want SegmentChecksumError", err)
	}
}

func TestTruncationFailsRestore(t *testing.T) {
	dir := t.TempDir()
	fp := seedStore(t, dir)
	seg := segFiles(t, dir)[0]
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	_, err = Restore(dir, fp, 100)
	var te *SegmentTruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("truncation: got %v, want SegmentTruncatedError", err)
	}
	if te.GotBytes != st.Size()-5 || te.WantBytes != st.Size() {
		t.Fatalf("truncation error reports %d/%d bytes, want %d/%d",
			te.GotBytes, te.WantBytes, st.Size()-5, st.Size())
	}
}

func TestStaleManifestFailsRestore(t *testing.T) {
	// Missing segment file → stale manifest.
	dir := t.TempDir()
	fp := seedStore(t, dir)
	if err := os.Remove(segFiles(t, dir)[0]); err != nil {
		t.Fatal(err)
	}
	_, err := Restore(dir, fp, 100)
	var me *ManifestStaleError
	if !errors.As(err, &me) {
		t.Fatalf("missing segment: got %v, want ManifestStaleError", err)
	}

	// Manifest recording the wrong set count → stale manifest.
	dir2 := t.TempDir()
	fp = seedStore(t, dir2)
	raw, err := os.ReadFile(filepath.Join(dir2, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	man.Epochs[0].R1Sets++
	if err := writeManifest(dir2, man); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(dir2, fp, 100); !errors.As(err, &me) {
		t.Fatalf("wrong epoch set count: got %v, want ManifestStaleError", err)
	}
}

func TestInspectPruneCompact(t *testing.T) {
	dir := t.TempDir()
	fp := seedStore(t, dir)

	// Drop an orphan the manifest does not reference.
	orphan := filepath.Join(dir, segPrefix+"999999"+segSuffix)
	if err := os.WriteFile(orphan, []byte("debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(info.Epochs) != 2 || info.R1Sets != 16 || info.R2Sets != 15 {
		t.Fatalf("Inspect: epochs=%d r1=%d r2=%d, want 2/16/15", len(info.Epochs), info.R1Sets, info.R2Sets)
	}
	if len(info.Orphans) != 1 || info.Orphans[0] != filepath.Base(orphan) {
		t.Fatalf("Inspect orphans = %v, want [%s]", info.Orphans, filepath.Base(orphan))
	}
	removed, err := Prune(dir)
	if err != nil || len(removed) != 1 {
		t.Fatalf("Prune: removed=%v err=%v", removed, err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan still present after prune: %v", err)
	}

	before, err := Restore(dir, fp, 100)
	if err != nil {
		t.Fatalf("Restore before compact: %v", err)
	}
	if err := Compact(dir); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, err := Restore(dir, fp, 100)
	if err != nil {
		t.Fatalf("Restore after compact: %v", err)
	}
	if after.Epochs != 1 || after.Epoch != before.Epoch {
		t.Fatalf("compacted store restores epoch=%d segments=%d, want %d/1", after.Epoch, after.Epochs, before.Epoch)
	}
	sameSets(t, before.R1, after.R1, "R1 post-compact")
	sameSets(t, before.R2, after.R2, "R2 post-compact")
	if len(segFiles(t, dir)) != 1 {
		t.Fatal("compact left more than one segment file")
	}
	// Compacting a single-segment store is a no-op.
	if err := Compact(dir); err != nil {
		t.Fatalf("Compact no-op: %v", err)
	}
	// A later checkpoint after compaction must not collide with the
	// merged segment's name.
	r1, r2 := testCollections(15)
	r1.Append([]uint32{9, 8, 7}, 0)
	r1.Append([]uint32{55}, 0)
	s, err := Open(dir, fp)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	if _, err := s.Checkpoint(3, r1, r2); err != nil {
		t.Fatalf("checkpoint after compact: %v", err)
	}
	res, err := Restore(dir, fp, 100)
	if err != nil {
		t.Fatalf("Restore after post-compact growth: %v", err)
	}
	sameSets(t, r1, res.R1, "R1 post-compact growth")
}

func TestCheckpointRejectsShrunkCollections(t *testing.T) {
	dir := t.TempDir()
	fp := seedStore(t, dir)
	s, err := Open(dir, fp)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	small1, small2 := testCollections(3)
	_, err = s.Checkpoint(5, small1, small2)
	var me *ManifestStaleError
	if !errors.As(err, &me) {
		t.Fatalf("shrunk collections: got %v, want ManifestStaleError", err)
	}
}
