// Package workload defines the experimental workloads of the paper's §IV:
// synthetic stand-ins for the four SNAP datasets of Table III (scaled to
// commodity hardware but matched in directedness and degree shape), and
// the neighbor-set maximum-coverage instances of §IV-C.
//
// The real datasets drop in unchanged through graph.LoadEdgeListFile; the
// stand-ins exist because the originals (up to 41.7M nodes / 1.5G edges)
// are not redistributable here and exceed a single test box. Every
// reported experiment depends on degree distribution and relative scale,
// which the generators control — see DESIGN.md, "Substitutions".
package workload

import (
	"fmt"

	"dimm/internal/coverage"
	"dimm/internal/graph"
)

// Spec describes one dataset stand-in.
type Spec struct {
	Name       string
	Nodes      int
	AvgDegree  float64
	Undirected bool
	// Paper columns of Table III for side-by-side reporting.
	PaperNodes     string
	PaperEdges     string
	PaperAvgDegree float64
	Seed           uint64
}

// Scale multiplies dataset node counts; the experiment harness uses small
// scales for quick runs and larger ones for the recorded EXPERIMENTS.md
// numbers.
type Scale float64

// Standard scales.
const (
	ScaleTiny  Scale = 0.25
	ScaleSmall Scale = 1.0
	ScaleFull  Scale = 4.0
)

// Specs returns the four Table III stand-ins at the given scale. Node
// counts are scaled from a baseline that keeps the largest dataset
// tractable on one machine; average degrees follow the paper's ratios
// (Facebook 43.7 undirected, Google+ 254.1, LiveJournal 28.5, Twitter
// 70.5), capped for the two highest-degree sets to keep RR generation
// costs proportionate at reduced node counts.
func Specs(scale Scale) []Spec {
	s := float64(scale)
	return []Spec{
		{
			Name: "facebook-sim", Nodes: max2(int(4000 * s)), AvgDegree: 43.7, Undirected: true,
			PaperNodes: "4.0K", PaperEdges: "88.2K", PaperAvgDegree: 43.7, Seed: 0xFACEB00C,
		},
		{
			Name: "gplus-sim", Nodes: max2(int(20000 * s)), AvgDegree: 60, Undirected: false,
			PaperNodes: "107.6K", PaperEdges: "13.7M", PaperAvgDegree: 254.1, Seed: 0x6500105,
		},
		{
			Name: "livejournal-sim", Nodes: max2(int(60000 * s)), AvgDegree: 28.5, Undirected: false,
			PaperNodes: "4.8M", PaperEdges: "69.0M", PaperAvgDegree: 28.5, Seed: 0x11763041,
		},
		{
			Name: "twitter-sim", Nodes: max2(int(100000 * s)), AvgDegree: 40, Undirected: false,
			PaperNodes: "41.7M", PaperEdges: "1.5G", PaperAvgDegree: 70.5, Seed: 0x731773,
		},
	}
}

func max2(n int) int {
	if n < 2 {
		return 2
	}
	return n
}

// Build materializes the stand-in graph with weighted-cascade edge
// probabilities (the paper's weight setting).
func (s Spec) Build() (*graph.Graph, error) {
	g, err := graph.GenPreferential(graph.GenConfig{
		Nodes:         s.Nodes,
		AvgDegree:     s.AvgDegree,
		Undirected:    s.Undirected,
		Seed:          s.Seed,
		UniformAttach: 0.15,
	})
	if err != nil {
		return nil, fmt.Errorf("workload: building %s: %w", s.Name, err)
	}
	wc, err := graph.AssignWeights(g, graph.WeightedCascade, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("workload: weighting %s: %w", s.Name, err)
	}
	return wc, nil
}

// TypeString returns the Table III "Type" column value.
func (s Spec) TypeString() string {
	if s.Undirected {
		return "Undirected"
	}
	return "Directed"
}

// NeighborSetSystem maps a graph to the §IV-C maximum-coverage instance:
// the universe is V, and node u's set is its out-neighborhood N_u, so the
// goal is to pick k users whose neighbor union is largest.
func NeighborSetSystem(g *graph.Graph) (*coverage.SetSystem, error) {
	n := g.NumNodes()
	sets := make([][]uint32, n)
	for u := 0; u < n; u++ {
		adj, _ := g.OutNeighbors(uint32(u))
		sets[u] = adj
	}
	return coverage.NewSetSystem(n, sets)
}
