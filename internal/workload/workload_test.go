package workload

import (
	"testing"

	"dimm/internal/graph"
)

func TestSpecsShape(t *testing.T) {
	specs := Specs(ScaleTiny)
	if len(specs) != 4 {
		t.Fatalf("want 4 Table III stand-ins, got %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate dataset name %s", s.Name)
		}
		names[s.Name] = true
		if s.Nodes < 2 || s.AvgDegree <= 0 {
			t.Fatalf("%s has degenerate dimensions: %+v", s.Name, s)
		}
	}
	if !names["facebook-sim"] || !names["twitter-sim"] {
		t.Fatal("expected facebook-sim and twitter-sim stand-ins")
	}
	// Scaling multiplies node counts.
	big := Specs(ScaleSmall)
	for i := range specs {
		if big[i].Nodes <= specs[i].Nodes {
			t.Fatalf("%s did not scale: %d vs %d", specs[i].Name, big[i].Nodes, specs[i].Nodes)
		}
	}
}

func TestSpecBuild(t *testing.T) {
	spec := Specs(ScaleTiny)[0] // facebook-sim
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != spec.Nodes {
		t.Fatalf("built %d nodes, want %d", g.NumNodes(), spec.Nodes)
	}
	// Stand-ins carry weighted-cascade probabilities and satisfy LT.
	if !g.UniformIn() {
		t.Fatal("stand-in should have WC (uniform-in) weights")
	}
	if err := g.ValidateLT(); err != nil {
		t.Fatal(err)
	}
	// Facebook is undirected: edge count is even and symmetric.
	if spec.Undirected {
		if g.NumEdges()%2 != 0 {
			t.Fatal("undirected stand-in has odd edge count")
		}
	}
	if spec.TypeString() != "Undirected" {
		t.Fatalf("facebook-sim type = %s", spec.TypeString())
	}
	if Specs(ScaleTiny)[1].TypeString() != "Directed" {
		t.Fatal("gplus-sim should be directed")
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := Specs(ScaleTiny)[1]
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("dataset stand-in not deterministic")
	}
}

func TestNeighborSetSystem(t *testing.T) {
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(0, 2, 1)
	_ = b.AddEdge(3, 2, 1)
	g := b.Build()
	sys, err := NeighborSetSystem(g)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumSets() != 4 || sys.NumElements() != 4 {
		t.Fatal("dimensions wrong")
	}
	if sys.TotalSize() != g.NumEdges() {
		t.Fatalf("total size %d != edge count %d", sys.TotalSize(), g.NumEdges())
	}
	if got := sys.Set(0); len(got) != 2 {
		t.Fatalf("set of node 0 = %v", got)
	}
	// Picking node 0 and 3 covers {1, 2}.
	res, err := sys.SequentialGreedy(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 2 {
		t.Fatalf("coverage = %d, want 2", res.Coverage)
	}
}
