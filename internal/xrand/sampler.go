package xrand

import (
	"fmt"
	"sort"
)

// Cumulative samples an index from a discrete distribution given its
// cumulative weight prefix. cum must be non-decreasing with cum[len-1] > 0;
// entry i is the total weight of items 0..i. Sampling is by binary search,
// O(log n) per draw with zero precomputation beyond the prefix itself.
//
// It is used for the LT reverse random walk: at node v the next in-neighbor
// is drawn with probability proportional to the edge weight p(u,v), which is
// exactly a draw from the cumulative prefix of v's in-edge weights.
type Cumulative struct {
	cum []float64
}

// NewCumulative builds a sampler over weights. All weights must be
// non-negative and at least one must be positive.
func NewCumulative(weights []float64) (*Cumulative, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("xrand: cumulative sampler needs at least one weight")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("xrand: negative weight %g at index %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("xrand: all weights are zero")
	}
	return &Cumulative{cum: cum}, nil
}

// Total returns the sum of all weights.
func (c *Cumulative) Total() float64 { return c.cum[len(c.cum)-1] }

// Sample draws an index with probability weight[i]/Total().
func (c *Cumulative) Sample(r *Rand) int {
	x := r.Float64() * c.Total()
	return sort.SearchFloat64s(c.cum, x)
}

// Alias is Walker's alias method: O(1) sampling from a fixed discrete
// distribution after O(n) preprocessing. Used where the same distribution is
// sampled many times, e.g. drawing RR-set roots proportional to a node
// weight vector in targeted variants.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table over weights (non-negative, positive sum).
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("xrand: alias table needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("xrand: negative weight %g at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("xrand: all weights are zero")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Sample draws an index from the table's distribution in O(1).
func (a *Alias) Sample(r *Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
