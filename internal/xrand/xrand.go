// Package xrand provides fast, deterministic pseudo-random number
// generation for the samplers in this repository.
//
// The influence-maximization pipeline draws billions of random numbers
// (one per edge inspected during reverse-reachable-set generation), so the
// generator must be cheap, allocation-free and seedable per machine so that
// distributed runs are reproducible. We implement xoshiro256++ seeded
// through SplitMix64, the combination recommended by Blackman and Vigna.
// math/rand is avoided on the hot path: its global lock and interface
// indirection are measurable at this call volume.
package xrand

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand a single 64-bit seed into the 256-bit xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256++ pseudo-random generator. The zero value is not
// usable; construct with New. Rand is not safe for concurrent use; each
// machine (worker) owns its own instance.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator deterministically derived from seed.
// Distinct seeds yield statistically independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	// A xoshiro state of all zeros is a fixed point; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uint32n returns a uniform value in [0, n). n must be positive.
// It uses Lemire's multiply-shift rejection method, which avoids the
// modulo instruction on the hot path.
func (r *Rand) Uint32n(n uint32) uint32 {
	v := uint32(r.Uint64())
	prod := uint64(v) * uint64(n)
	low := uint32(prod)
	if low < n {
		thresh := -n % n
		for low < thresh {
			v = uint32(r.Uint64())
			prod = uint64(v) * uint64(n)
			low = uint32(prod)
		}
	}
	return uint32(prod >> 32)
}

// Intn returns a uniform value in [0, n). n must be positive and fit in 32 bits.
func (r *Rand) Intn(n int) int {
	return int(r.Uint32n(uint32(n)))
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(p) sequence, i.e. a sample of the Geometric(p) distribution on
// {0, 1, 2, ...}. It is the core of subset sampling (SUBSIM): to visit the
// success positions of d independent coins of bias p, jump ahead by
// Geometric(p)+1 positions at a time instead of flipping d coins.
// p must satisfy 0 < p <= 1.
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	u := r.Float64()
	// Guard against u == 0, for which Log is -Inf and the floor overflows.
	for u == 0 {
		u = r.Float64()
	}
	g := math.Floor(math.Log(u) / math.Log(1-p))
	if g > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(g)
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle permutes xs uniformly at random (Fisher–Yates).
func (r *Rand) Shuffle(xs []uint32) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// MachineSeed derives the seed for machine index i from a run-level base
// seed. A SplitMix64 step decorrelates adjacent machine streams far better
// than base+i would.
func MachineSeed(base uint64, machine int) uint64 {
	s := base ^ (0x5851f42d4c957f2d * (uint64(machine) + 1))
	return splitMix64(&s)
}

// LaneSeed derives the RNG lane for RR set number `set` (a lifetime
// counter, 0-based) of the stream identified by base. Giving every RR set
// its own counter-derived lane makes the draws consumed by set t a pure
// function of (base, t): a batched sampler can interleave many in-flight
// sets in any order and still reproduce the scalar sampler's output
// bit for bit.
func LaneSeed(base, set uint64) uint64 {
	s := base ^ (0xbf58476d1ce4e5b9 * (set + 1))
	return splitMix64(&s)
}

// SketchRank derives the bottom-k sketch rank of diffusion instance
// `set` under the rank stream identified by base. The rank is a pure
// function of (base, set) — no generator state is consumed — so a
// sketch builder can visit instances in any order, from any number of
// shards, and assign every instance the same rank: the order-invariance
// that makes sketch construction deterministic at any parallelism, the
// same trick LaneSeed plays for batched RR sampling.
func SketchRank(base, set uint64) uint64 {
	s := base ^ (0xd6e8feb86659fd93 * (set + 1))
	return splitMix64(&s)
}

// ScanSeed derives the generator seed for the in-edge scan of one node
// inside one RR-set lane. Keying the scan by (lane, node) — rather than
// drawing from a sequential per-set stream — makes every edge coin a pure
// function of (lane, node, edge index), independent of the order in which
// a traversal happens to visit nodes. That order-invariance is what lets
// a level-synchronous batched kernel group many frontiers' scans of the
// same adjacency block without perturbing any set's coins.
func ScanSeed(lane uint64, node uint32) uint64 {
	s := lane ^ (0x94d049bb133111eb * (uint64(node) + 1))
	return splitMix64(&s)
}
