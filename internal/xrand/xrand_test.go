package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d/1000 outputs; streams are correlated", same)
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUint32nBounds(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(n uint32, steps uint8) bool {
		if n == 0 {
			n = 1
		}
		for i := 0; i < int(steps); i++ {
			if v := r.Uint32n(n); v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint32nUniform(t *testing.T) {
	r := New(9)
	const buckets = 10
	const draws = 500000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Uint32n(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d: count %d deviates from %v by more than 5 sigma", b, c, want)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(13)
	const draws = 200000
	const p = 0.3
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency = %v", p, got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const draws = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		sum := 0.0
		for i := 0; i < draws; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / draws
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.05*math.Max(want, 1) {
			t.Fatalf("Geometric(%v) mean = %v, want %v", p, mean, want)
		}
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(23)
	xs := make([]uint32, 100)
	for i := range xs {
		xs[i] = uint32(i)
	}
	r.Shuffle(xs)
	seen := make(map[uint32]bool, len(xs))
	for _, x := range xs {
		if x >= 100 || seen[x] {
			t.Fatalf("shuffle broke the multiset: %v", xs)
		}
		seen[x] = true
	}
}

func TestPerm(t *testing.T) {
	r := New(29)
	out := make([]int, 50)
	r.Perm(out)
	seen := make(map[int]bool)
	for _, x := range out {
		if x < 0 || x >= 50 || seen[x] {
			t.Fatalf("Perm produced invalid permutation: %v", out)
		}
		seen[x] = true
	}
}

func TestMachineSeedDistinct(t *testing.T) {
	seen := make(map[uint64]int)
	for m := 0; m < 1000; m++ {
		s := MachineSeed(12345, m)
		if prev, ok := seen[s]; ok {
			t.Fatalf("machines %d and %d share seed %d", prev, m, s)
		}
		seen[s] = m
	}
}

func TestCumulativeSampler(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	c, err := NewCumulative(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := New(31)
	const draws = 300000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[c.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[1])
	}
	for i, w := range weights {
		want := w / 10 * draws
		if w == 0 {
			continue
		}
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Fatalf("index %d: %d draws, want ~%v", i, counts[i], want)
		}
	}
}

func TestCumulativeErrors(t *testing.T) {
	if _, err := NewCumulative(nil); err == nil {
		t.Fatal("want error for empty weights")
	}
	if _, err := NewCumulative([]float64{0, 0}); err == nil {
		t.Fatal("want error for all-zero weights")
	}
	if _, err := NewCumulative([]float64{1, -1}); err == nil {
		t.Fatal("want error for negative weight")
	}
}

func TestAliasSampler(t *testing.T) {
	weights := []float64{5, 1, 0, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := New(37)
	const draws = 300000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[2])
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Fatalf("index %d: %d draws, want ~%v", i, counts[i], want)
		}
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Fatal("want error for empty weights")
	}
	if _, err := NewAlias([]float64{0}); err == nil {
		t.Fatal("want error for zero total")
	}
	if _, err := NewAlias([]float64{-1, 2}); err == nil {
		t.Fatal("want error for negative weight")
	}
}

func TestAliasMatchesCumulative(t *testing.T) {
	// Property: alias and cumulative samplers agree on the distribution.
	weights := []float64{2, 7, 1, 1, 9, 0.5}
	a, _ := NewAlias(weights)
	c, _ := NewCumulative(weights)
	ra, rc := New(41), New(43)
	const draws = 400000
	ca := make([]float64, len(weights))
	cc := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		ca[a.Sample(ra)]++
		cc[c.Sample(rc)]++
	}
	for i := range weights {
		diff := math.Abs(ca[i]-cc[i]) / draws
		if diff > 0.01 {
			t.Fatalf("samplers disagree on index %d: alias %v vs cumulative %v", i, ca[i]/draws, cc[i]/draws)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkGeometric(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Geometric(0.1)
	}
	_ = sink
}
