#!/usr/bin/env bash
# Captures CPU and allocation profiles of the RR-generation sweep for
# kernel tuning. Scale knobs come from the environment so a quick local
# capture and a full cache-stressing one use the same entry point:
#
#   ./scripts/capture_pprof.sh                 # moderate scale into ./profiles
#   RRGEN_NODES=4000000 RRGEN_COUNT=200000 \
#     ./scripts/capture_pprof.sh profiles-big  # the BENCH_RRGEN.json setting
#
# Inspect with: go tool pprof -top profiles/rrgen.cpu.pb.gz
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-profiles}"
mkdir -p "$out"

go run ./cmd/experiments -run rrgen -rrgen-out "" \
	-rrgen-graph "${RRGEN_GRAPH:-rmat}" \
	-rrgen-nodes "${RRGEN_NODES:-200000}" \
	-rrgen-degree "${RRGEN_DEGREE:-16}" \
	-rrgen-count "${RRGEN_COUNT:-50000}" \
	-rrgen-ps "${RRGEN_PS:-1}" \
	-rrgen-bs "${RRGEN_BS:-1,64}" \
	-rrgen-subset="${RRGEN_SUBSET:-false}" \
	-cpuprofile "$out/rrgen.cpu.pb.gz" \
	-memprofile "$out/rrgen.allocs.pb.gz"

echo "wrote $out/rrgen.cpu.pb.gz and $out/rrgen.allocs.pb.gz"
